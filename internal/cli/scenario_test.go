package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synran/internal/scenario"
)

// writeScenario formats s into dir/name.scenario and returns the path.
func writeScenario(t *testing.T, dir, name string, s scenario.Scenario) string {
	t.Helper()
	text, err := scenario.Format(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".scenario")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioFlagParity is the acceptance pin of the façade redesign:
// a flag-built run and its Format-ed .scenario file must produce
// byte-identical output, because both travel the same Scenario ->
// SimScenario/AsyncScenario code path.
func TestScenarioFlagParity(t *testing.T) {
	cases := []struct {
		name string
		run  func(w *strings.Builder) error
		scn  func() (scenario.Scenario, error)
	}{
		{"sim-single", func(w *strings.Builder) error {
			return ConsensusSim(defaultSimOpts(), w)
		}, defaultSimOpts().Scenario},
		{"sim-trials", func(w *strings.Builder) error {
			opts := defaultSimOpts()
			opts.Trials = 4
			return ConsensusSim(opts, w)
		}, func() (scenario.Scenario, error) {
			opts := defaultSimOpts()
			opts.Trials = 4
			return opts.Scenario()
		}},
		{"sim-chaos", func(w *strings.Builder) error {
			opts := defaultSimOpts()
			opts.Adversary = "none"
			opts.Chaos = "drop=0.03,until=15"
			opts.FaultBudget = 4
			opts.Trials = 3
			return ConsensusSim(opts, w)
		}, func() (scenario.Scenario, error) {
			opts := defaultSimOpts()
			opts.Adversary = "none"
			opts.Chaos = "drop=0.03,until=15"
			opts.FaultBudget = 4
			opts.Trials = 3
			return opts.Scenario()
		}},
		{"async", func(w *strings.Builder) error {
			return AsyncSim(AsyncOptions{N: 5, T: -1, Scheduler: "splitter",
				Coin: "random", Workload: "half", Seed: 9, Trials: 3}, w)
		}, AsyncOptions{N: 5, T: -1, Scheduler: "splitter",
			Coin: "random", Workload: "half", Seed: 9, Trials: 3}.Scenario},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fromFlags strings.Builder
			if err := tc.run(&fromFlags); err != nil {
				t.Fatal(err)
			}
			s, err := tc.scn()
			if err != nil {
				t.Fatal(err)
			}
			path := writeScenario(t, t.TempDir(), tc.name, s)
			common := CommonFlags{Scenario: path}
			var fromFile strings.Builder
			if err := RunScenarios(&common, nil, &fromFile); err != nil {
				t.Fatal(err)
			}
			if fromFlags.String() != fromFile.String() {
				t.Fatalf("flag-built and file-built outputs differ:\n--- flags ---\n%s--- file ---\n%s",
					fromFlags.String(), fromFile.String())
			}
		})
	}
}

// TestRunScenariosDir: directory mode runs every entry in name order
// with a banner each, and a failing entry is reported without stopping
// the rest.
func TestRunScenariosDir(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "a-sync", scenario.Scenario{N: 5, T: 2, Seed: 1})
	writeScenario(t, dir, "b-async", scenario.Scenario{
		Protocol: scenario.ProtocolAsyncBenOr, N: 5, T: 2, Seed: 1})
	common := CommonFlags{ScenarioDir: dir}
	var sb strings.Builder
	if err := RunScenarios(&common, nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== a-sync (") || !strings.Contains(out, "=== b-async (") {
		t.Fatalf("banners missing:\n%s", out)
	}
	if strings.Index(out, "a-sync") > strings.Index(out, "b-async") {
		t.Fatalf("entries out of name order:\n%s", out)
	}

	bad := 1 // seed-1 synran at n=5 decides 0
	writeScenario(t, dir, "c-bad", scenario.Scenario{N: 5, T: 2, Seed: 1,
		Expect: scenario.Expect{Decided: &bad}})
	sb.Reset()
	err := RunScenarios(&common, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "1 of 3 scenarios failed: c-bad") {
		t.Fatalf("want the c-bad failure summary, got %v", err)
	}
	if !strings.Contains(sb.String(), "FAIL expect.decided = 1, got 0") {
		t.Fatalf("violation line missing:\n%s", sb.String())
	}
}

// TestSimScenarioExpectations: a single run against its expectations —
// ok when they hold, an error plus FAIL lines when they do not.
func TestSimScenarioExpectations(t *testing.T) {
	agree := true
	s, err := scenario.Scenario{N: 5, T: 2, Seed: 1,
		Expect: scenario.Expect{Agreement: &agree}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SimScenario(s, SimOptions{}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "expect        : ok") {
		t.Fatalf("ok line missing:\n%s", sb.String())
	}

	wrong := 1
	s.Expect.Decided = &wrong
	sb.Reset()
	err = SimScenario(s, SimOptions{}, &sb)
	if err == nil || !strings.Contains(err.Error(), "1 expectation(s) violated") {
		t.Fatalf("want an expectation error, got %v", err)
	}
	if !strings.Contains(sb.String(), "expect        : FAIL expect.decided = 1, got 0") {
		t.Fatalf("FAIL line missing:\n%s", sb.String())
	}
}

// TestConformanceScenarioMode drives the conformance core in both
// single-file and directory mode.
func TestConformanceScenarioMode(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, "clean", scenario.Scenario{N: 5, T: 2, Seed: 1})
	var sb strings.Builder
	if err := Conformance(ConformanceOptions{Scenario: path}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conformance scenario sweep: 1 entries", "sync cases : 1", "all lanes agree"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, sb.String())
		}
	}

	writeScenario(t, dir, "async", scenario.Scenario{
		Protocol: scenario.ProtocolAsyncBenOr, N: 5, T: 2, Seed: 1})
	sb.Reset()
	if err := Conformance(ConformanceOptions{ScenarioDir: dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sync cases : 1") || !strings.Contains(sb.String(), "async cases: 1") {
		t.Fatalf("case accounting missing:\n%s", sb.String())
	}

	bad := 1
	writeScenario(t, dir, "zz-bad", scenario.Scenario{N: 5, T: 2, Seed: 1,
		Expect: scenario.Expect{Decided: &bad}})
	sb.Reset()
	err := Conformance(ConformanceOptions{ScenarioDir: dir}, &sb)
	if err == nil || !strings.Contains(sb.String(), "VIOLATION") {
		t.Fatalf("want a rendered violation and an error, got %v:\n%s", err, sb.String())
	}
}

// TestBenchScenarioMode renders the corpus outcome table through the
// bench core.
func TestBenchScenarioMode(t *testing.T) {
	dir := t.TempDir()
	agree := true
	writeScenario(t, dir, "clean", scenario.Scenario{N: 5, T: 2, Seed: 1, Trials: 2,
		Expect: scenario.Expect{Agreement: &agree}})
	writeScenario(t, dir, "async", scenario.Scenario{
		Protocol: scenario.ProtocolAsyncBenOr, N: 5, T: 2, Seed: 1})
	var out, errw strings.Builder
	if err := Bench(BenchOptions{ScenarioDir: dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SCN:", "clean", "async"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errw.String(), "all claims hold") {
		t.Fatalf("claims banner missing:\n%s", errw.String())
	}

	bad := 1
	writeScenario(t, dir, "zz-bad", scenario.Scenario{N: 5, T: 2, Seed: 1,
		Expect: scenario.Expect{Decided: &bad}})
	out.Reset()
	err := Bench(BenchOptions{ScenarioDir: dir}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "zz-bad: expectations hold") {
		t.Fatalf("want the failed claim, got %v", err)
	}
}
