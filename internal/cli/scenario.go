package cli

import (
	"fmt"
	"io"
	"strings"

	"synran/internal/metrics"
	"synran/internal/scenario"
)

// This file is the shared -scenario surface: every binary registers the
// same two flags (CommonFlags.Scenario/ScenarioDir via FlagScenario),
// resolves them through the same loader, and the execution binaries
// dispatch each entry to the same cores their flag façades use — so a
// .scenario file means the same thing everywhere.

// ScenarioMode reports whether the shared -scenario/-scenario-dir flags
// selected declarative input instead of the per-binary flags.
func (c *CommonFlags) ScenarioMode() bool {
	return c.Scenario != "" || c.ScenarioDir != ""
}

// LoadScenarios resolves the -scenario/-scenario-dir flags to parsed,
// validated entries: the single file, or every *.scenario in the
// directory in name order.
func (c *CommonFlags) LoadScenarios() ([]scenario.Entry, error) {
	return loadScenarioEntries(c.Scenario, c.ScenarioDir)
}

func loadScenarioEntries(file, dir string) ([]scenario.Entry, error) {
	if file != "" {
		s, err := scenario.LoadFile(file)
		if err != nil {
			return nil, err
		}
		return []scenario.Entry{{Path: file, Scenario: s}}, nil
	}
	return scenario.LoadDir(dir)
}

// RunScenarios is the shared -scenario dispatch of the execution
// binaries (consensus-sim, asyncsim, lowerbound): every entry runs
// through the same cores the flag façades use — SimScenario for
// synchronous scenarios, AsyncScenario for async-benor. A single
// -scenario file produces exactly the output of the equivalent flag
// run; -scenario-dir adds a banner per entry and a failure summary.
func RunScenarios(common *CommonFlags, m *metrics.Engine, w io.Writer) error {
	entries, err := common.LoadScenarios()
	if err != nil {
		return err
	}
	banner := common.ScenarioDir != ""
	var failed []string
	for i, e := range entries {
		if banner {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "=== %s (%s)\n", e.Name(), e.Path)
		}
		// Each entry journals under its own fingerprint-derived scope, so a
		// multi-entry run resumes per entry without mixing shards.
		var runErr error
		if e.Scenario.IsAsync() {
			runErr = AsyncScenario(e.Scenario, AsyncOptions{Workers: common.Workers, Metrics: m, Durable: common.Durable()}, w)
		} else {
			runErr = SimScenario(e.Scenario, SimOptions{Workers: common.Workers, Metrics: m, Durable: common.Durable()}, w)
		}
		if runErr != nil {
			if !banner {
				return runErr
			}
			fmt.Fprintf(w, "FAIL: %v\n", runErr)
			failed = append(failed, e.Name())
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d scenarios failed: %s",
			len(failed), len(entries), strings.Join(failed, ", "))
	}
	return nil
}
