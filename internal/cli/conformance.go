package cli

import (
	"fmt"
	"io"

	"synran/internal/conformance"
	"synran/internal/metrics"
	"synran/internal/trials"
)

// ConformanceOptions configures Conformance.
type ConformanceOptions struct {
	// Quick selects the reduced case grid (the CI smoke configuration).
	Quick bool
	Seed  uint64
	// Seeds is the number of seeds per grid point (minimum 1).
	Seeds int
	// Workers bounds the case worker pool (0 = all cores); the report is
	// identical at every worker count.
	Workers int
	// Engine pins every grid case's lock-step backend ("" = object,
	// "soa" = columnar fast path); the cross-engine differential lane
	// runs either way.
	Engine string
	// MaxRounds caps each synchronous lane (0 = the harness default).
	MaxRounds int
	// One, when non-empty, checks a single case spec (the -one repro flag
	// a Divergence prints) instead of the grid.
	One string
	// Scenario, when non-empty, checks a single .scenario file through
	// every applicable lane (the repro line a corpus violation prints).
	Scenario string
	// ScenarioDir sweeps every *.scenario file in a directory — the
	// checked-in corpus under testdata/corpus is the CI consumer.
	ScenarioDir string
	// Metrics, when non-nil, counts conformance cases as trials.
	Metrics *metrics.Engine
	// Durable configures checkpointing, retry, and hedging for the case
	// batches (conformance.SweepConfig.Durable).
	Durable trials.Durability
}

// Conformance is the command core of cmd/conformance: it runs the
// differential sweep (or one case) and renders every divergence and
// oracle violation, returning an error when any were found so the
// command exits non-zero.
func Conformance(opts ConformanceOptions, w io.Writer) error {
	if opts.One != "" {
		return conformanceOne(opts, w)
	}
	if opts.Scenario != "" || opts.ScenarioDir != "" {
		return conformanceScenarios(opts, w)
	}
	cfg := conformance.SweepConfig{
		Quick:     opts.Quick,
		Seed:      opts.Seed,
		Seeds:     opts.Seeds,
		Workers:   opts.Workers,
		Engine:    opts.Engine,
		MaxRounds: opts.MaxRounds,
		Metrics:   opts.Metrics,
		Durable:   opts.Durable,
	}
	sum, err := conformance.Sweep(cfg)
	if err != nil {
		return err
	}
	mode := "full"
	if opts.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "conformance %s sweep: seed=%d\n", mode, opts.Seed)
	fmt.Fprintf(w, "sync cases : %d (sim object vs soa vs netsim vs reset vs snapshot forks)\n", sum.SyncCases)
	fmt.Fprintf(w, "async cases: %d (replay determinism + invariants)\n", sum.AsyncCases)
	renderFindings(w, sum.Divergences, sum.Violations)
	if !sum.Ok() {
		return fmt.Errorf("%d divergences, %d violations", len(sum.Divergences), len(sum.Violations))
	}
	fmt.Fprintln(w, "all lanes agree; all oracles hold")
	return nil
}

// conformanceOne replays a single case spec — the reproduction path a
// reported Divergence names.
func conformanceOne(opts ConformanceOptions, w io.Writer) error {
	c, err := conformance.ParseCase(opts.One)
	if err != nil {
		return err
	}
	if opts.MaxRounds > 0 {
		c.MaxRounds = opts.MaxRounds
	}
	fmt.Fprintf(w, "conformance case: %s\n", c.Name())
	divs, violations, err := conformance.CheckSync(c, nil)
	if err != nil {
		return err
	}
	renderFindings(w, divs, violations)
	if len(divs) > 0 || len(violations) > 0 {
		return fmt.Errorf("%d divergences, %d violations", len(divs), len(violations))
	}
	fmt.Fprintln(w, "all lanes agree; all oracles hold")
	return nil
}

// conformanceScenarios runs the declarative path: every entry of the
// -scenario/-scenario-dir selection goes through conformance.SweepCorpus
// — the sync differential lanes or the async replay check, plus the
// expectation lane for entries that assert outcomes.
func conformanceScenarios(opts ConformanceOptions, w io.Writer) error {
	entries, err := loadScenarioEntries(opts.Scenario, opts.ScenarioDir)
	if err != nil {
		return err
	}
	src := opts.Scenario
	if src == "" {
		src = opts.ScenarioDir
	}
	// Scenario files pin their own engine and round caps; only the
	// presentation knobs apply here.
	sum, err := conformance.SweepCorpus(entries, conformance.SweepConfig{
		Workers: opts.Workers, Metrics: opts.Metrics, Durable: opts.Durable,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "conformance scenario sweep: %d entries from %s\n", len(entries), src)
	fmt.Fprintf(w, "sync cases : %d (differential lanes + expectations)\n", sum.SyncCases)
	fmt.Fprintf(w, "async cases: %d (replay determinism + expectations)\n", sum.AsyncCases)
	renderFindings(w, sum.Divergences, sum.Violations)
	if !sum.Ok() {
		return fmt.Errorf("%d divergences, %d violations", len(sum.Divergences), len(sum.Violations))
	}
	fmt.Fprintln(w, "all lanes agree; all oracles hold")
	return nil
}

func renderFindings(w io.Writer, divs []conformance.Divergence, violations []string) {
	for _, d := range divs {
		fmt.Fprintf(w, "DIVERGENCE %s\n", d)
	}
	for _, v := range violations {
		fmt.Fprintf(w, "VIOLATION %s\n", v)
	}
}
