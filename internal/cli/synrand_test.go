package cli

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"synran/internal/scenario"
	"synran/internal/server"
)

// soakScenario builds one of the soak's job mix: moderate batches so a
// kill lands mid-queue but a full drain stays smoke-sized.
func soakScenario(t *testing.T, seed uint64, trialCount int) (scenario.Scenario, string) {
	t.Helper()
	s, err := scenario.Scenario{Protocol: "synran", Adversary: "splitvote", Workload: "half",
		N: 48, T: 47, Seed: seed, Trials: trialCount}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	c, err := scenario.Compact(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// localReference runs the scenario through SimScenario with zero
// durability — the `consensus-sim -trials` path the server's outputs
// must match byte for byte.
func localReference(t *testing.T, s scenario.Scenario) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SimScenario(s, SimOptions{Workers: 4}, &buf); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return buf.Bytes()
}

// TestServerJobMatchesConsensusSim is the quick identity check: one
// job through the resident server (real DurableWorker path: gate,
// shard journal, stream) equals the same scenario run locally.
func TestServerJobMatchesConsensusSim(t *testing.T) {
	s, compact := soakScenario(t, 11, 64)
	want := localReference(t, s)

	addr, shutdown, err := StartServer(ServeConfig{Addr: "localhost:0", DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	cl := &server.Client{BaseURL: "http://" + addr, Name: "identity"}
	jv, err := cl.Submit(compact, server.PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	if err := cl.StreamShards(jv.ID, func(server.ShardUpdate) error { streamed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if streamed != s.Trials {
		t.Fatalf("streamed %d shard updates, want %d", streamed, s.Trials)
	}
	res, err := cl.Result(jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Output != string(want) {
		t.Fatalf("server job diverged from consensus-sim\nstate: %s\n--- server\n%s--- local\n%s",
			res.State, res.Output, want)
	}
}

// TestServerSoakRestartMidQueue is the in-process half of the server
// soak (run under -race by the race target): concurrent clients submit
// a mixed-priority queue, the server is stopped mid-queue and a new
// incarnation opened on the same data dir, and every job — the ones
// that finished before the stop and the ones resumed after — must
// match the consensus-sim bytes for its scenario.
func TestServerSoakRestartMidQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second restart soak; skipped in -short")
	}
	dataDir := t.TempDir()

	type job struct {
		compact string
		want    []byte
	}
	// Three distinct scenarios, references computed up front.
	var menu []job
	for i, trialCount := range []int{900, 1200, 1500} {
		s, compact := soakScenario(t, 100+uint64(i), trialCount)
		menu = append(menu, job{compact, localReference(t, s)})
	}

	addr, shutdown, err := StartServer(ServeConfig{
		Addr: "localhost:0", DataDir: dataDir, Workers: 4, QueueLimit: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + addr

	// 6 concurrent clients, 2 jobs each, both priorities in the mix.
	const clients, jobsPer = 6, 2
	ids := make([][]string, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &server.Client{BaseURL: baseURL, Name: fmt.Sprintf("soak-%d", c)}
			for j := 0; j < jobsPer; j++ {
				prio := server.PriorityBulk
				if (c+j)%2 == 0 {
					prio = server.PriorityInteractive
				}
				jv, err := cl.Submit(menu[(c+j)%len(menu)].compact, prio)
				if err != nil {
					errs <- fmt.Errorf("client %d submit %d: %w", c, j, err)
					return
				}
				ids[c] = append(ids[c], jv.ID)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Stop mid-queue: wait until at least one shard checkpoint exists so
	// the restart genuinely resumes, not recomputes-from-zero.
	deadline := time.Now().Add(20 * time.Second)
	for !journalHasRecords(filepath.Join(dataDir, "shards")) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("mid-queue shutdown: %v", err)
	}

	// Second incarnation on the same data dir resumes the queue.
	addr2, shutdown2, err := StartServer(ServeConfig{
		Addr: "localhost:0", DataDir: dataDir, Workers: 4, QueueLimit: 64,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer shutdown2()
	cl := &server.Client{BaseURL: "http://" + addr2, Name: "soak-verify"}
	for c := 0; c < clients; c++ {
		for j, id := range ids[c] {
			res, err := cl.Result(id)
			if err != nil {
				t.Fatalf("job %s after restart: %v", id, err)
			}
			want := menu[(c+j)%len(menu)].want
			if res.State != "done" || res.Output != string(want) {
				t.Fatalf("job %s after restart: state=%s, output diverged from consensus-sim\n--- server\n%s--- local\n%s",
					id, res.State, res.Output, want)
			}
		}
	}
}

// buildSynrand compiles the real server binary for the SIGKILL soak.
func buildSynrand(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "synrand")
	cmd := exec.Command("go", "build", "-o", bin, "synran/cmd/synrand")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build synrand: %v\n%s", err, out)
	}
	return bin
}

// startServe launches `synrand serve` and returns the process and the
// bound base URL (parsed from the serving line).
func startServe(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", "localhost:0", "-data", dataDir, "-workers", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "serving on http://") {
				lineCh <- line
				break
			}
		}
		close(lineCh)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			cmd.Process.Kill()
			t.Fatal("synrand serve exited before reporting its address")
		}
		rest := line[strings.Index(line, "http://"):]
		return cmd, strings.Fields(rest)[0]
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("synrand serve never reported its address")
	}
	panic("unreachable")
}

// TestSynrandSIGKILLResume is the cmd-level half of the server soak:
// the real synrand binary is SIGKILLed mid-queue — no handlers run,
// only journal appends survive — and a restarted server on the same
// data dir must finish every job with output byte-identical to the
// consensus-sim run of the same scenario.
func TestSynrandSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	bin := buildSynrand(t)
	dataDir := t.TempDir()

	type job struct {
		compact string
		want    []byte
	}
	var menu []job
	for i, trialCount := range []int{1200, 1600} {
		s, compact := soakScenario(t, 200+uint64(i), trialCount)
		menu = append(menu, job{compact, localReference(t, s)})
	}

	victim, baseURL := startServe(t, bin, dataDir)

	cl := &server.Client{BaseURL: baseURL, Name: "sigkill-soak"}
	var ids []string
	for j := 0; j < 4; j++ {
		prio := server.PriorityBulk
		if j%2 == 0 {
			prio = server.PriorityInteractive
		}
		jv, err := cl.Submit(menu[j%len(menu)].compact, prio)
		if err != nil {
			victim.Process.Kill()
			t.Fatalf("submit %d: %v", j, err)
		}
		ids = append(ids, jv.ID)
	}

	// SIGKILL once shard checkpoints prove the kill lands mid-queue.
	deadline := time.Now().Add(20 * time.Second)
	for !journalHasRecords(filepath.Join(dataDir, "shards")) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	victim.Process.Kill()
	victim.Wait()

	successor, baseURL2 := startServe(t, bin, dataDir)
	defer func() {
		successor.Process.Kill()
		successor.Wait()
	}()
	cl2 := &server.Client{BaseURL: baseURL2, Name: "sigkill-verify"}
	for j, id := range ids {
		res, err := cl2.Result(id)
		if err != nil {
			t.Fatalf("job %s after SIGKILL restart: %v", id, err)
		}
		want := menu[j%len(menu)].want
		if res.State != "done" || res.Output != string(want) {
			t.Fatalf("job %s after SIGKILL restart: state=%s, output diverged\n--- server\n%s--- local\n%s",
				id, res.State, res.Output, want)
		}
	}
}

// TestLoadgenSelfhostQuick runs the loadgen core at reduced scale —
// the same path CI's server-smoke job drives at full scale.
func TestLoadgenSelfhostQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server and reference runs; skipped in -short")
	}
	var out bytes.Buffer
	err := Loadgen(LoadgenConfig{
		Clients: 8, Jobs: 1, Canary: 2, Seed: 3, Workers: 4,
		DataDir: t.TempDir(),
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "loadgen: PASS") {
		t.Fatalf("loadgen output missing PASS:\n%s", out.String())
	}
}
