package cli

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"synran/internal/metrics"
)

// pprofReg is the registry the expvar "synran_metrics" variable reads.
// It is a process-global because expvar variables cannot be
// unregistered; StartPprof swaps the pointer instead.
var (
	pprofReg         atomic.Pointer[metrics.Registry]
	pprofPublishOnce sync.Once
)

// StartPprof serves net/http/pprof and expvar on addr (e.g.
// "localhost:6060") from a background goroutine, for profiling the
// metrics layer's overhead and watching instruments live. When reg is
// non-nil its full report — volatile instruments included, since this
// is a diagnostic surface, not the deterministic export — appears as
// the expvar "synran_metrics" variable at /debug/vars.
//
// It returns the bound address (useful with a ":0" addr), a shutdown
// function, and any listen error. The handlers go on a private mux, so
// nothing leaks onto http.DefaultServeMux.
func StartPprof(addr string, reg *metrics.Registry) (string, func() error, error) {
	if reg != nil {
		pprofReg.Store(reg)
	}
	pprofPublishOnce.Do(func() {
		expvar.Publish("synran_metrics", expvar.Func(func() any {
			r := pprofReg.Load()
			if r == nil {
				return nil
			}
			return r.Report(true)
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
