package cli

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"synran/internal/metrics"
)

// pprofReg is the registry the expvar "synran_metrics" variable reads.
// It is a process-global because expvar variables cannot be
// unregistered; re-registration swaps the pointer instead. The split of
// responsibilities is deliberate and pprofReg.Store is the only refresh
// path: pprofPublishOnce guards nothing but the one-time
// expvar.Publish (a second Publish of the same name panics), while the
// published closure always reads the current pointer — so a process
// that builds a second metrics engine (the experiment server restarts
// its engine per job) refreshes the surface with SetPprofRegistry and
// never re-reads a stale registry.
var (
	pprofReg         atomic.Pointer[metrics.Registry]
	pprofPublishOnce sync.Once
)

// SetPprofRegistry makes reg the registry behind the expvar
// "synran_metrics" variable, replacing whatever engine published
// before; a nil reg clears the surface (the variable reads as null).
// This is the explicit re-registration path for processes that outlive
// a single metrics engine — StartPprof need only be called once for
// the listener, and every engine swap goes through here.
func SetPprofRegistry(reg *metrics.Registry) {
	pprofReg.Store(reg)
	pprofPublishOnce.Do(publishPprofVar)
}

func publishPprofVar() {
	expvar.Publish("synran_metrics", expvar.Func(func() any {
		r := pprofReg.Load()
		if r == nil {
			return nil
		}
		return r.Report(true)
	}))
}

// StartPprof serves net/http/pprof and expvar on addr (e.g.
// "localhost:6060") from a background goroutine, for profiling the
// metrics layer's overhead and watching instruments live. When reg is
// non-nil its full report — volatile instruments included, since this
// is a diagnostic surface, not the deterministic export — appears as
// the expvar "synran_metrics" variable at /debug/vars; a nil reg
// leaves the currently-published registry (if any) in place. Processes
// that replace their metrics engine after the listener is up must call
// SetPprofRegistry with each new engine's registry, or the expvar
// surface keeps reading the retired one.
//
// It returns the bound address (useful with a ":0" addr), a shutdown
// function, and any listen error. The handlers go on a private mux, so
// nothing leaks onto http.DefaultServeMux.
func StartPprof(addr string, reg *metrics.Registry) (string, func() error, error) {
	if reg != nil {
		SetPprofRegistry(reg)
	}
	pprofPublishOnce.Do(publishPprofVar)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
