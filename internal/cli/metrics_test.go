package cli

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synran/internal/metrics"
)

// reportJSON renders the deterministic (non-volatile) report.
func reportJSON(t *testing.T, m *metrics.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Registry().Report(false).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimManyMetricsWorkerInvariance is the CLI half of the metrics
// determinism contract: the multi-trial summary already proves the
// tables are worker-invariant; this proves the metrics export is too —
// byte-identical JSON whether 16 trials run serially or on an 8-wide
// pool.
func TestSimManyMetricsWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		opts := defaultSimOpts()
		opts.Trials = 16
		opts.Workers = workers
		opts.Metrics = metrics.NewEngine(metrics.New(8))
		if err := ConsensusSim(opts, io.Discard); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return reportJSON(t, opts.Metrics)
	}
	serial := run(1)
	pooled := run(8)
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("metrics diverge between workers=1 and workers=8:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}
	rep, err := metrics.ReadJSON(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Counter(metrics.NameTrialsRun); got != 16 {
		t.Fatalf("trials_run = %d, want 16", got)
	}
	if rep.Counter(metrics.NameRounds) == 0 || rep.Counter(metrics.NameMessages) == 0 {
		t.Fatalf("engine instruments stayed zero:\n%s", serial)
	}
}

// TestBenchMetricsCollects wires an engine through a one-experiment
// bench run and checks the experiment's executions actually landed in
// it.
func TestBenchMetricsCollects(t *testing.T) {
	opts := BenchOptions{Quick: true, Seed: 42, Only: "E3", Workers: 2,
		Metrics: metrics.NewEngine(metrics.New(2))}
	if err := Bench(opts, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.TrialsRun.Value(); got == 0 {
		t.Fatal("trials_run stayed zero through a bench run")
	}
}

// TestWriteMetricsRouting checks the flag-to-destination plumbing:
// -metrics prints to the writer, -metrics-out writes the file, both at
// once duplicate the same bytes, and a nil engine is a silent no-op.
func TestWriteMetricsRouting(t *testing.T) {
	c := CommonFlags{}
	if c.MetricsEnabled() || c.NewMetricsEngine() != nil {
		t.Fatal("metrics must be fully disabled by default")
	}
	if err := c.WriteMetrics(nil, failingWriter{}); err != nil {
		t.Fatalf("nil engine must be a no-op, got %v", err)
	}

	c = CommonFlags{Metrics: true, MetricsOut: filepath.Join(t.TempDir(), "m.json"), Workers: 2}
	eng := c.NewMetricsEngine()
	if eng == nil {
		t.Fatal("enabled flags produced no engine")
	}
	eng.TrialsRun.Inc(0)
	var buf bytes.Buffer
	if err := c.WriteMetrics(eng, &buf); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(c.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, buf.Bytes()) {
		t.Fatalf("file and stdout reports differ:\n%s\nvs\n%s", fromFile, buf.Bytes())
	}
	if !strings.Contains(buf.String(), metrics.NameTrialsRun) {
		t.Fatalf("report missing %s:\n%s", metrics.NameTrialsRun, buf.String())
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("must not be written") }

// TestStartPprofServesMetrics boots the diagnostic listener on an
// ephemeral port and checks both surfaces: the pprof index and the
// expvar page carrying the registry (volatile instruments included —
// this endpoint is for live inspection, not the deterministic export).
func TestStartPprofServesMetrics(t *testing.T) {
	reg := metrics.New(1)
	eng := metrics.NewEngine(reg)
	eng.TrialsRun.Inc(0)
	addr, shutdown, err := StartPprof("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index lacks profiles:\n%s", body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "synran_metrics") || !strings.Contains(vars, metrics.NameTrialsRun) {
		t.Fatalf("expvar page lacks the published registry:\n%s", vars)
	}
}
