// Package cli holds the testable command cores of the repository's
// binaries: each cmd/<tool>/main.go parses flags and delegates here, so
// the behaviour (output formatting, error paths, exit conditions) is
// unit-tested without spawning processes.
package cli

import (
	"fmt"
	"io"
	"os"

	"synran"
	"synran/internal/sim"
	"synran/internal/stats"
	"synran/internal/trace"
	"synran/internal/trials"
	"synran/internal/workload"
)

// SimOptions configures ConsensusSim.
type SimOptions struct {
	N, T      int
	Protocol  string
	Adversary string
	Workload  string
	Seed      uint64
	Trials    int
	Trace     bool
	Digest    bool
	TraceFile string
	Live      bool
	// Workers bounds the multi-trial worker pool (0 = all cores). The
	// summary is identical at every worker count: trial i always runs at
	// seed Seed+i and results aggregate in index order.
	Workers int
}

// ConsensusSim is the command core of cmd/consensus-sim.
func ConsensusSim(opts SimOptions, w io.Writer) error {
	if opts.T < 0 {
		opts.T = opts.N - 1
	}
	if opts.Trials <= 1 {
		return simOnce(opts, w)
	}
	return simMany(opts, w)
}

func buildSpec(opts SimOptions, seed uint64) (synran.Spec, error) {
	inputs, err := workload.Named(opts.Workload, opts.N, seed)
	if err != nil {
		return synran.Spec{}, err
	}
	return synran.Spec{
		N: opts.N, T: opts.T, Inputs: inputs,
		Protocol:  opts.Protocol,
		Adversary: opts.Adversary,
		Seed:      seed,
		Live:      opts.Live,
	}, nil
}

func simOnce(opts SimOptions, w io.Writer) error {
	spec, err := buildSpec(opts, opts.Seed)
	if err != nil {
		return err
	}
	var (
		observers sim.MultiObserver
		dg        *sim.Digest
		rec       *trace.Recorder
	)
	if opts.Trace {
		observers = append(observers, &synran.TraceObserver{W: w})
	}
	if opts.Digest {
		dg = sim.NewDigest()
		observers = append(observers, dg)
	}
	if opts.TraceFile != "" {
		rec = trace.NewRecorder(opts.N, opts.T, opts.Seed)
		observers = append(observers, rec)
	}
	if len(observers) > 0 {
		spec.Observer = observers
	}
	res, err := synran.Run(spec)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s seed=%d\n",
		opts.Protocol, opts.Adversary, opts.N, opts.T, opts.Workload, opts.Seed)
	fmt.Fprintf(w, "decided value : %d\n", res.DecidedValue())
	fmt.Fprintf(w, "rounds        : %d (all decided), %d (all halted)\n", res.DecideRounds, res.HaltRounds)
	fmt.Fprintf(w, "messages      : %d delivered\n", res.Messages)
	fmt.Fprintf(w, "crashes       : %d of budget %d; survivors %d\n", res.Crashes, opts.T, res.Survivors)
	fmt.Fprintf(w, "agreement     : %v\n", res.Agreement)
	fmt.Fprintf(w, "validity      : %v\n", res.Validity)
	fmt.Fprintf(w, "theory        : upper-bound shape %.2f rounds, lower-bound floor %.2f rounds\n",
		synran.UpperBoundRounds(opts.N, opts.T), synran.LowerBoundRounds(opts.N, opts.T))
	if dg != nil {
		fmt.Fprintf(w, "digest        : %s\n", dg)
	}
	if rec != nil {
		f, err := os.Create(opts.TraceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Log().WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written : %s (%d events)\n", opts.TraceFile, len(rec.Log().Events))
	}
	if !res.Agreement || !res.Validity {
		return fmt.Errorf("safety violated (expected only for the symmetric baseline under mass crashes)")
	}
	return nil
}

func simMany(opts SimOptions, w io.Writer) error {
	type outcome struct {
		rounds   float64
		crashes  float64
		decided  int
		violated bool
	}
	outs, err := trials.Run(opts.Workers, opts.Trials, func(i int) (outcome, error) {
		spec, err := buildSpec(opts, opts.Seed+uint64(i))
		if err != nil {
			return outcome{}, err
		}
		res, err := synran.Run(spec)
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			rounds:   float64(res.HaltRounds),
			crashes:  float64(res.Crashes),
			decided:  res.DecidedValue(),
			violated: !res.Agreement || !res.Validity,
		}, nil
	})
	if err != nil {
		return err
	}
	rounds := make([]float64, 0, opts.Trials)
	crashes := make([]float64, 0, opts.Trials)
	decided := map[int]int{}
	violations := 0
	for _, o := range outs {
		rounds = append(rounds, o.rounds)
		crashes = append(crashes, o.crashes)
		decided[o.decided]++
		if o.violated {
			violations++
		}
	}
	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s trials=%d (seeds %d..%d)\n",
		opts.Protocol, opts.Adversary, opts.N, opts.T, opts.Workload, opts.Trials,
		opts.Seed, opts.Seed+uint64(opts.Trials)-1)
	fmt.Fprintf(w, "rounds   : %s  %s\n", stats.Summarize(rounds), stats.Sparkline(rounds, 12))
	fmt.Fprintf(w, "crashes  : %s\n", stats.Summarize(crashes))
	fmt.Fprintf(w, "decisions: 0 → %d, 1 → %d\n", decided[0], decided[1])
	fmt.Fprintf(w, "safety   : %d violations\n", violations)
	fmt.Fprintf(w, "theory   : upper-bound shape %.2f rounds\n", synran.UpperBoundRounds(opts.N, opts.T))
	if violations > 0 {
		return fmt.Errorf("%d safety violations", violations)
	}
	return nil
}
