// Package cli holds the testable command cores of the repository's
// binaries: each cmd/<tool>/main.go parses flags and delegates here, so
// the behaviour (output formatting, error paths, exit conditions) is
// unit-tested without spawning processes.
package cli

import (
	"errors"
	"fmt"
	"io"
	"os"

	"synran"
	"synran/internal/metrics"
	"synran/internal/sim"
	"synran/internal/stats"
	"synran/internal/trace"
	"synran/internal/trials"
	"synran/internal/workload"
)

// SimOptions configures ConsensusSim.
type SimOptions struct {
	N, T      int
	Protocol  string
	Adversary string
	Workload  string
	Seed      uint64
	Trials    int
	Trace     bool
	Digest    bool
	TraceFile string
	Live      bool
	// Engine selects the lock-step engine backend ("" = object, "soa" =
	// columnar fast path); see synran.Spec.Engine.
	Engine string
	// Chaos, when non-empty, runs on the hardened live runner with this
	// fault schedule (chaos.ParseSpec syntax, e.g.
	// "drop=0.05,dup=0.02,stall=0.01,maxstall=5ms").
	Chaos string
	// FaultBudget bounds the crash-equivalent chaos faults the hardened
	// runner may absorb (see synran.Spec.FaultBudget).
	FaultBudget int
	// Workers bounds the multi-trial worker pool (0 = all cores). The
	// summary is identical at every worker count: trial i always runs at
	// seed Seed+i and results aggregate in index order.
	Workers int
	// Metrics, when non-nil, receives instrument emissions from every
	// execution, sharded by the trial worker. The exported report obeys
	// the same worker-count invariance as the summary.
	Metrics *metrics.Engine
}

// ConsensusSim is the command core of cmd/consensus-sim.
func ConsensusSim(opts SimOptions, w io.Writer) error {
	if opts.T < 0 {
		opts.T = opts.N - 1
	}
	if opts.Trials <= 1 {
		return simOnce(opts, w)
	}
	return simMany(opts, w)
}

func buildSpec(opts SimOptions, seed uint64, shard int) (synran.Spec, error) {
	inputs, err := workload.Named(opts.Workload, opts.N, seed)
	if err != nil {
		return synran.Spec{}, err
	}
	spec := synran.Spec{
		N: opts.N, T: opts.T, Inputs: inputs,
		Protocol:     opts.Protocol,
		Adversary:    opts.Adversary,
		Seed:         seed,
		Live:         opts.Live,
		Engine:       opts.Engine,
		Metrics:      opts.Metrics,
		MetricsShard: shard,
	}
	if opts.Chaos != "" {
		cfg, err := synran.ParseChaosSpec(opts.Chaos)
		if err != nil {
			return synran.Spec{}, err
		}
		spec.Chaos = &cfg
		spec.FaultBudget = opts.FaultBudget
	}
	return spec, nil
}

func simOnce(opts SimOptions, w io.Writer) error {
	spec, err := buildSpec(opts, opts.Seed, 0)
	if err != nil {
		return err
	}
	var (
		observers sim.MultiObserver
		dg        *sim.Digest
		rec       *trace.Recorder
	)
	if opts.Trace {
		observers = append(observers, &synran.TraceObserver{W: w})
	}
	if opts.Digest {
		dg = sim.NewDigest()
		observers = append(observers, dg)
	}
	if opts.TraceFile != "" {
		rec = trace.NewRecorder(opts.N, opts.T, opts.Seed)
		observers = append(observers, rec)
	}
	if len(observers) > 0 {
		spec.Observer = observers
	}
	res, runErr := synran.Run(spec)
	if res == nil {
		return runErr
	}
	// A non-nil result alongside an error is the hardened runner's
	// graceful degradation: report what happened, then fail.

	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s seed=%d\n",
		opts.Protocol, opts.Adversary, opts.N, opts.T, opts.Workload, opts.Seed)
	fmt.Fprintf(w, "decided value : %d\n", res.DecidedValue())
	fmt.Fprintf(w, "rounds        : %d (all decided), %d (all halted)\n", res.DecideRounds, res.HaltRounds)
	fmt.Fprintf(w, "messages      : %d delivered\n", res.Messages)
	fmt.Fprintf(w, "crashes       : %d of budget %d; survivors %d\n", res.Crashes, opts.T, res.Survivors)
	fmt.Fprintf(w, "agreement     : %v\n", res.Agreement)
	fmt.Fprintf(w, "validity      : %v\n", res.Validity)
	fmt.Fprintf(w, "theory        : upper-bound shape %.2f rounds, lower-bound floor %.2f rounds\n",
		synran.UpperBoundRounds(opts.N, opts.T), synran.LowerBoundRounds(opts.N, opts.T))
	if spec.Chaos != nil {
		f := res.Faults
		fmt.Fprintf(w, "chaos         : %s (fault budget %d)\n", spec.Chaos.Spec(), opts.FaultBudget)
		fmt.Fprintf(w, "faults        : dropped=%d duplicated=%d delayed=%d stalled=%d panics=%d demoted=%d (crash-equivalent %d)\n",
			f.Dropped, f.Duplicated, f.Delayed, f.Stalled, f.Panics, f.Demoted, f.CrashEquivalent())
		for _, note := range res.FaultNotes {
			fmt.Fprintf(w, "    fault     : %s\n", note)
		}
	}
	if res.Partial {
		fmt.Fprintf(w, "partial       : true (run degraded before completion)\n")
	}
	if dg != nil {
		fmt.Fprintf(w, "digest        : %s\n", dg)
	}
	if rec != nil {
		f, err := os.Create(opts.TraceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Log().WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written : %s (%d events)\n", opts.TraceFile, len(rec.Log().Events))
	}
	if runErr != nil {
		return runErr
	}
	if !res.Agreement || !res.Validity {
		return fmt.Errorf("safety violated (expected only for the symmetric baseline under mass crashes)")
	}
	return nil
}

func simMany(opts SimOptions, w io.Writer) error {
	type outcome struct {
		rounds   float64
		crashes  float64
		decided  int
		violated bool
		degraded bool
		faults   sim.Faults
	}
	outs, err := trials.RunWorker(opts.Workers, opts.Trials, trials.Metered(opts.Metrics, func(worker, i int) (outcome, error) {
		spec, err := buildSpec(opts, opts.Seed+uint64(i), worker)
		if err != nil {
			return outcome{}, err
		}
		res, err := synran.Run(spec)
		if err != nil {
			// Graceful degradation of the hardened runner is a counted
			// outcome in chaos mode, not a harness failure.
			if opts.Chaos != "" && res != nil && res.Partial &&
				(errors.Is(err, synran.ErrFaultBudget) || errors.Is(err, sim.ErrMaxRounds)) {
				if m := opts.Metrics; m != nil {
					m.TrialsDegraded.Inc(worker)
				}
				return outcome{degraded: true, faults: res.Faults}, nil
			}
			return outcome{}, err
		}
		return outcome{
			rounds:   float64(res.HaltRounds),
			crashes:  float64(res.Crashes),
			decided:  res.DecidedValue(),
			violated: !res.Agreement || !res.Validity,
			faults:   res.Faults,
		}, nil
	}))
	if err != nil {
		return err
	}
	rounds := make([]float64, 0, opts.Trials)
	crashes := make([]float64, 0, opts.Trials)
	decided := map[int]int{}
	violations, degraded := 0, 0
	var faults sim.Faults
	for _, o := range outs {
		faults.Dropped += o.faults.Dropped
		faults.Duplicated += o.faults.Duplicated
		faults.Delayed += o.faults.Delayed
		faults.Stalled += o.faults.Stalled
		faults.Panics += o.faults.Panics
		faults.Demoted += o.faults.Demoted
		if o.degraded {
			degraded++
			continue
		}
		rounds = append(rounds, o.rounds)
		crashes = append(crashes, o.crashes)
		decided[o.decided]++
		if o.violated {
			violations++
		}
	}
	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s trials=%d (seeds %d..%d)\n",
		opts.Protocol, opts.Adversary, opts.N, opts.T, opts.Workload, opts.Trials,
		opts.Seed, opts.Seed+uint64(opts.Trials)-1)
	fmt.Fprintf(w, "rounds   : %s  %s\n", stats.Summarize(rounds), stats.Sparkline(rounds, 12))
	fmt.Fprintf(w, "crashes  : %s\n", stats.Summarize(crashes))
	fmt.Fprintf(w, "decisions: 0 → %d, 1 → %d\n", decided[0], decided[1])
	fmt.Fprintf(w, "safety   : %d violations\n", violations)
	if opts.Chaos != "" {
		fmt.Fprintf(w, "chaos    : %s (fault budget %d); %d of %d trials degraded gracefully\n",
			opts.Chaos, opts.FaultBudget, degraded, opts.Trials)
		fmt.Fprintf(w, "faults   : dropped=%d duplicated=%d delayed=%d stalled=%d panics=%d demoted=%d\n",
			faults.Dropped, faults.Duplicated, faults.Delayed, faults.Stalled, faults.Panics, faults.Demoted)
	}
	fmt.Fprintf(w, "theory   : upper-bound shape %.2f rounds\n", synran.UpperBoundRounds(opts.N, opts.T))
	if violations > 0 {
		return fmt.Errorf("%d safety violations", violations)
	}
	return nil
}
