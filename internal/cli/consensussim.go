// Package cli holds the testable command cores of the repository's
// binaries: each cmd/<tool>/main.go parses flags and delegates here, so
// the behaviour (output formatting, error paths, exit conditions) is
// unit-tested without spawning processes.
package cli

import (
	"errors"
	"fmt"
	"io"

	"synran"
	"synran/internal/metrics"
	"synran/internal/scenario"
	"synran/internal/sim"
	"synran/internal/stats"
	"synran/internal/trace"
	"synran/internal/trials"
)

// SimOptions configures ConsensusSim. The semantic fields (everything
// up to Chaos/FaultBudget) are a façade over scenario.Scenario — see
// Scenario — while the remainder are presentation knobs a scenario
// file does not carry.
type SimOptions struct {
	N, T      int
	Protocol  string
	Adversary string
	Workload  string
	Seed      uint64
	Trials    int
	Trace     bool
	Digest    bool
	TraceFile string
	Live      bool
	// Engine selects the lock-step engine backend ("" = object, "soa" =
	// columnar fast path); see synran.Spec.Engine.
	Engine string
	// Chaos, when non-empty, runs on the hardened live runner with this
	// fault schedule (chaos.ParseSpec syntax, e.g.
	// "drop=0.05,dup=0.02,stall=0.01,maxstall=5ms").
	Chaos string
	// FaultBudget bounds the crash-equivalent chaos faults the hardened
	// runner may absorb (see synran.Spec.FaultBudget).
	FaultBudget int
	// Workers bounds the multi-trial worker pool (0 = all cores). The
	// summary is identical at every worker count: trial i always runs at
	// seed Seed+i and results aggregate in index order.
	Workers int
	// Metrics, when non-nil, receives instrument emissions from every
	// execution, sharded by the trial worker. The exported report obeys
	// the same worker-count invariance as the summary.
	Metrics *metrics.Engine
	// Durable configures checkpointing, retry, and hedging for the
	// multi-trial batch (CommonFlags.Durable). The zero value runs the
	// batch exactly as before.
	Durable trials.Durability
}

// Scenario is the declarative form of the flag surface. The -t<0
// default (crash budget n-1) resolves here, before the scenario is
// built, and the result is normalized and validated exactly like a
// parsed .scenario file — so a flag-built run and its Format-ed file
// are the same execution.
func (opts SimOptions) Scenario() (scenario.Scenario, error) {
	t := opts.T
	if t < 0 {
		t = opts.N - 1
	}
	s := scenario.Scenario{
		Protocol:    opts.Protocol,
		Adversary:   opts.Adversary,
		Workload:    opts.Workload,
		N:           opts.N,
		T:           t,
		Seed:        opts.Seed,
		Engine:      opts.Engine,
		Live:        opts.Live,
		Chaos:       opts.Chaos,
		FaultBudget: opts.FaultBudget,
		Trials:      opts.Trials,
	}
	return s.Normalized()
}

// ConsensusSim is the command core of cmd/consensus-sim: the flags
// convert to a Scenario and run through SimScenario, the same code path
// a -scenario file takes.
func ConsensusSim(opts SimOptions, w io.Writer) error {
	s, err := opts.Scenario()
	if err != nil {
		return err
	}
	return SimScenario(s, opts, w)
}

// SimScenario runs one scenario through consensus-sim's execution core.
// opts supplies only the presentation knobs a scenario file does not
// carry (trace, digest, trace file, workers, metrics); the execution is
// fully determined by s. Async scenarios dispatch to AsyncScenario —
// every binary accepts every scenario.
func SimScenario(s scenario.Scenario, opts SimOptions, w io.Writer) error {
	if s.IsAsync() {
		return AsyncScenario(s, AsyncOptions{Workers: opts.Workers, Metrics: opts.Metrics, Durable: opts.Durable}, w)
	}
	if s.Trials <= 1 {
		return simOnce(s, opts, w)
	}
	return simMany(s, opts, w)
}

// gracefulPartial reports whether err is the hardened runner's typed
// graceful degradation for a partial result — the one error class that
// expectation-carrying scenarios may legitimately assert about.
func gracefulPartial(res *synran.Result, err error) bool {
	return res != nil && res.Partial &&
		(errors.Is(err, synran.ErrFaultBudget) || errors.Is(err, sim.ErrMaxRounds))
}

func simOnce(s scenario.Scenario, opts SimOptions, w io.Writer) error {
	spec, err := s.Spec(0, opts.Metrics, 0)
	if err != nil {
		return err
	}
	var (
		observers sim.MultiObserver
		dg        *sim.Digest
		rec       *trace.Recorder
	)
	if opts.Trace {
		observers = append(observers, &synran.TraceObserver{W: w})
	}
	if opts.Digest {
		dg = sim.NewDigest()
		observers = append(observers, dg)
	}
	if opts.TraceFile != "" {
		rec = trace.NewRecorder(s.N, s.T, s.Seed)
		observers = append(observers, rec)
	}
	if len(observers) > 0 {
		spec.Observer = observers
	}
	res, runErr := synran.Run(spec)
	if res == nil {
		return runErr
	}
	// A non-nil result alongside an error is the hardened runner's
	// graceful degradation: report what happened, then fail.

	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s seed=%d\n",
		s.Protocol, s.Adversary, s.N, s.T, s.Workload, s.Seed)
	fmt.Fprintf(w, "decided value : %d\n", res.DecidedValue())
	fmt.Fprintf(w, "rounds        : %d (all decided), %d (all halted)\n", res.DecideRounds, res.HaltRounds)
	fmt.Fprintf(w, "messages      : %d delivered\n", res.Messages)
	fmt.Fprintf(w, "crashes       : %d of budget %d; survivors %d\n", res.Crashes, s.T, res.Survivors)
	fmt.Fprintf(w, "agreement     : %v\n", res.Agreement)
	fmt.Fprintf(w, "validity      : %v\n", res.Validity)
	fmt.Fprintf(w, "theory        : upper-bound shape %.2f rounds, lower-bound floor %.2f rounds\n",
		synran.UpperBoundRounds(s.N, s.T), synran.LowerBoundRounds(s.N, s.T))
	if spec.Chaos != nil {
		f := res.Faults
		fmt.Fprintf(w, "chaos         : %s (fault budget %d)\n", spec.Chaos.Spec(), s.FaultBudget)
		fmt.Fprintf(w, "faults        : dropped=%d duplicated=%d delayed=%d stalled=%d panics=%d demoted=%d (crash-equivalent %d)\n",
			f.Dropped, f.Duplicated, f.Delayed, f.Stalled, f.Panics, f.Demoted, f.CrashEquivalent())
		for _, note := range res.FaultNotes {
			fmt.Fprintf(w, "    fault     : %s\n", note)
		}
	}
	if res.Partial {
		fmt.Fprintf(w, "partial       : true (run degraded before completion)\n")
	}
	if dg != nil {
		fmt.Fprintf(w, "digest        : %s\n", dg)
	}
	if rec != nil {
		if err := AtomicWriteFile(opts.TraceFile, rec.Log().WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written : %s (%d events)\n", opts.TraceFile, len(rec.Log().Events))
	}
	if runErr != nil {
		// With expectations present, graceful degradation is judged by
		// them (a scenario may assert partial = true); anything else
		// stays an error.
		if !(s.Expect.Any() && gracefulPartial(res, runErr)) {
			return runErr
		}
	}
	if s.Expect.Any() {
		if vs := s.CheckExpect(scenario.OutcomeOf(res)); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(w, "expect        : FAIL %s\n", v)
			}
			return fmt.Errorf("%d expectation(s) violated", len(vs))
		}
		fmt.Fprintf(w, "expect        : ok\n")
		return nil
	}
	if !res.Agreement || !res.Validity {
		return fmt.Errorf("safety violated (expected only for the symmetric baseline under mass crashes)")
	}
	return nil
}

func simMany(s scenario.Scenario, opts SimOptions, w io.Writer) error {
	// Fields are exported because shard results cross the checkpoint
	// journal as JSON when -checkpoint is set.
	type outcome struct {
		Rounds   float64
		Crashes  float64
		Decided  int
		Violated bool
		Degraded bool
		Faults   sim.Faults
		Expect   []string
	}
	fp, err := scenario.Compact(s)
	if err != nil {
		return err
	}
	outs, drep, derr := trials.DurableWorker(opts.Durable, BatchScope("sim", fp), fp, opts.Workers, s.Trials, opts.Metrics, func(worker, i int) (outcome, error) {
		spec, err := s.Spec(i, opts.Metrics, worker)
		if err != nil {
			return outcome{}, err
		}
		res, err := synran.Run(spec)
		if err != nil {
			// Graceful degradation of the hardened runner is a counted
			// outcome in chaos mode, not a harness failure.
			if s.Chaos != "" && gracefulPartial(res, err) {
				if m := opts.Metrics; m != nil {
					m.TrialsDegraded.Inc(worker)
				}
				o := outcome{Degraded: true, Faults: res.Faults}
				if s.Expect.Any() {
					o.Expect = s.CheckExpect(scenario.OutcomeOf(res))
				}
				return o, nil
			}
			return outcome{}, err
		}
		o := outcome{
			Rounds:   float64(res.HaltRounds),
			Crashes:  float64(res.Crashes),
			Decided:  res.DecidedValue(),
			Violated: !res.Agreement || !res.Validity,
			Faults:   res.Faults,
		}
		if s.Expect.Any() {
			o.Expect = s.CheckExpect(scenario.OutcomeOf(res))
		}
		return o, nil
	})
	// An interrupted durable batch prints nothing: the journal holds the
	// completed shards and a -resume re-run produces the full table,
	// byte-identical to an uninterrupted one. Permanently-failed shards
	// (retry budget spent) yield a partial table plus FAIL lines instead
	// of discarding the completed work.
	var batchErr *trials.BatchError
	if derr != nil && !errors.As(derr, &batchErr) {
		return derr
	}
	failed := make(map[int]bool, len(drep.Failures))
	for _, f := range drep.Failures {
		failed[f.Trial] = true
	}
	rounds := make([]float64, 0, s.Trials)
	crashes := make([]float64, 0, s.Trials)
	decided := map[int]int{}
	violations, degraded, expectFails := 0, 0, 0
	var faults sim.Faults
	var expectLines []string
	for i, o := range outs {
		if failed[i] {
			continue
		}
		faults.Dropped += o.Faults.Dropped
		faults.Duplicated += o.Faults.Duplicated
		faults.Delayed += o.Faults.Delayed
		faults.Stalled += o.Faults.Stalled
		faults.Panics += o.Faults.Panics
		faults.Demoted += o.Faults.Demoted
		for _, v := range o.Expect {
			expectFails++
			expectLines = append(expectLines, fmt.Sprintf("trial %d (seed %d): %s", i, s.TrialSeed(i), v))
		}
		if o.Degraded {
			degraded++
			continue
		}
		rounds = append(rounds, o.Rounds)
		crashes = append(crashes, o.Crashes)
		decided[o.Decided]++
		if o.Violated {
			violations++
		}
	}
	fmt.Fprintf(w, "protocol=%s adversary=%s n=%d t=%d workload=%s trials=%d (seeds %d..%d)\n",
		s.Protocol, s.Adversary, s.N, s.T, s.Workload, s.Trials,
		s.Seed, s.Seed+uint64(s.Trials)-1)
	fmt.Fprintf(w, "rounds   : %s  %s\n", stats.Summarize(rounds), stats.Sparkline(rounds, 12))
	fmt.Fprintf(w, "crashes  : %s\n", stats.Summarize(crashes))
	fmt.Fprintf(w, "decisions: 0 → %d, 1 → %d\n", decided[0], decided[1])
	fmt.Fprintf(w, "safety   : %d violations\n", violations)
	if s.Chaos != "" {
		fmt.Fprintf(w, "chaos    : %s (fault budget %d); %d of %d trials degraded gracefully\n",
			s.Chaos, s.FaultBudget, degraded, s.Trials)
		fmt.Fprintf(w, "faults   : dropped=%d duplicated=%d delayed=%d stalled=%d panics=%d demoted=%d\n",
			faults.Dropped, faults.Duplicated, faults.Delayed, faults.Stalled, faults.Panics, faults.Demoted)
	}
	fmt.Fprintf(w, "theory   : upper-bound shape %.2f rounds\n", synran.UpperBoundRounds(s.N, s.T))
	if batchErr != nil {
		for _, f := range drep.Failures {
			fmt.Fprintf(w, "durable  : FAIL trial %d (seed %d) after %d attempt(s): %v\n",
				f.Trial, s.TrialSeed(f.Trial), f.Attempts, f.Err)
		}
		return derr
	}
	if s.Expect.Any() {
		for _, line := range expectLines {
			fmt.Fprintf(w, "expect   : FAIL %s\n", line)
		}
		if expectFails > 0 {
			return fmt.Errorf("%d expectation(s) violated across %d trials", expectFails, s.Trials)
		}
		fmt.Fprintf(w, "expect   : ok (%d trials)\n", s.Trials)
		return nil
	}
	if violations > 0 {
		return fmt.Errorf("%d safety violations", violations)
	}
	return nil
}
