package netsim

import (
	"errors"
	"testing"

	"synran/internal/adversary"
	"synran/internal/core"
	"synran/internal/protocol/earlystop"
	"synran/internal/protocol/floodset"
	"synran/internal/protocol/phaseking"
	"synran/internal/sim"
)

func halfInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i % 2
	}
	return in
}

func TestEquivalenceWithSequentialEngine(t *testing.T) {
	// The live runner must produce bit-for-bit the same result as the
	// lock-step engine: same decisions, same rounds, same crash count.
	for _, n := range []int{3, 8, 24} {
		for seed := uint64(0); seed < 6; seed++ {
			inputs := halfInputs(n)
			tt := n / 2

			mk := func() ([]sim.Process, sim.Adversary) {
				procs, err := core.NewProcs(n, inputs, seed, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return procs, &adversary.Random{PerRound: 0.6, MaxPerRound: 2}
			}

			procsA, advA := mk()
			exec, err := sim.NewExecution(sim.Config{N: n, T: tt}, procsA, inputs, seed)
			if err != nil {
				t.Fatal(err)
			}
			seqRes, err := exec.Run(advA)
			if err != nil {
				t.Fatal(err)
			}

			procsB, advB := mk()
			liveRes, err := Run(sim.Config{N: n, T: tt}, procsB, inputs, advB, seed)
			if err != nil {
				t.Fatal(err)
			}

			if seqRes.HaltRounds != liveRes.HaltRounds ||
				seqRes.DecideRounds != liveRes.DecideRounds ||
				seqRes.Crashes != liveRes.Crashes ||
				seqRes.Survivors != liveRes.Survivors ||
				seqRes.Messages != liveRes.Messages ||
				seqRes.DecidedValue() != liveRes.DecidedValue() {
				t.Fatalf("n=%d seed=%d: sequential %+v != live %+v", n, seed, seqRes, liveRes)
			}
			for i := range seqRes.Decisions {
				if seqRes.Decisions[i] != liveRes.Decisions[i] {
					t.Fatalf("n=%d seed=%d: decision[%d] %d != %d",
						n, seed, i, seqRes.Decisions[i], liveRes.Decisions[i])
				}
			}
		}
	}
}

func TestLiveRunnerSafety(t *testing.T) {
	const n = 32
	inputs := halfInputs(n)
	for seed := uint64(0); seed < 5; seed++ {
		procs, err := core.NewProcs(n, inputs, seed, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sim.Config{N: n, T: n - 1}, procs, inputs, &adversary.SplitVote{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("seed=%d: agreement=%v validity=%v", seed, res.Agreement, res.Validity)
		}
	}
}

func TestLiveRunnerValidation(t *testing.T) {
	procs, err := core.NewProcs(4, []int{0, 1, 0, 1}, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sim.Config{N: 5}, procs, []int{0, 1, 0, 1}, adversary.None{}, 1); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
	if _, err := Run(sim.Config{N: 4, T: 9}, procs, []int{0, 1, 0, 1}, adversary.None{}, 1); err == nil {
		t.Fatal("T > N must be rejected")
	}
}

// neverDecide is a process that never decides (to exercise MaxRounds).
type neverDecide struct{}

func (neverDecide) Round(int, []sim.Recv) (int64, bool) { return 0, true }
func (neverDecide) Decided() (int, bool)                { return 0, false }
func (neverDecide) Stopped() bool                       { return false }
func (neverDecide) Clone() sim.Process                  { return neverDecide{} }

func TestLiveRunnerMaxRounds(t *testing.T) {
	procs := []sim.Process{neverDecide{}, neverDecide{}}
	_, err := Run(sim.Config{N: 2, T: 0, MaxRounds: 5}, procs, []int{0, 0}, adversary.None{}, 1)
	if !errors.Is(err, sim.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestLiveRunnerObserver(t *testing.T) {
	hist := &sim.CrashHistogram{}
	const n = 8
	inputs := halfInputs(n)
	procs, err := core.NewProcs(n, inputs, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := &adversary.Schedule{Plans: map[int][]sim.CrashPlan{1: {{Victim: 0}, {Victim: 1}}}}
	res, err := Run(sim.Config{N: n, T: 2, Observer: hist}, procs, inputs, sched, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 2 || hist.Total() != 2 {
		t.Fatalf("crashes=%d observed=%d, want 2/2", res.Crashes, hist.Total())
	}
}

func TestCrossEngineDigestEquality(t *testing.T) {
	// The digest observer must produce identical hashes for the same
	// execution on both engines — the strongest cross-engine check.
	const n = 16
	inputs := halfInputs(n)
	seed := uint64(11)

	dSeq := sim.NewDigest()
	procsA, err := core.NewProcs(n, inputs, seed, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.NewExecution(sim.Config{N: n, T: n / 2, Observer: dSeq}, procsA, inputs, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(&adversary.Random{PerRound: 0.6}); err != nil {
		t.Fatal(err)
	}

	dLive := sim.NewDigest()
	procsB, err := core.NewProcs(n, inputs, seed, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sim.Config{N: n, T: n / 2, Observer: dLive}, procsB, inputs,
		&adversary.Random{PerRound: 0.6}, seed); err != nil {
		t.Fatal(err)
	}

	if dSeq.Sum() != dLive.Sum() {
		t.Fatalf("engines digest differently: %s vs %s", dSeq, dLive)
	}
}

func TestLiveRunnerAllProtocols(t *testing.T) {
	// Every fail-stop protocol in the repository runs unchanged on the
	// live engine.
	const n = 13
	inputs := halfInputs(n)
	builders := map[string]func() ([]sim.Process, error){
		"synran": func() ([]sim.Process, error) {
			return core.NewProcs(n, inputs, 3, core.Options{})
		},
		"leadercoin": func() ([]sim.Process, error) {
			return core.NewProcs(n, inputs, 3, core.Options{LeaderCoin: true})
		},
		"floodset": func() ([]sim.Process, error) {
			return floodset.NewProcs(n, 3, inputs)
		},
		"earlystop": func() ([]sim.Process, error) {
			return earlystop.NewProcs(n, 3, inputs)
		},
		"phaseking": func() ([]sim.Process, error) {
			return phaseking.NewProcs(n, 3, inputs)
		},
	}
	for name, mk := range builders {
		procs, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Run(sim.Config{N: n, T: 3}, procs, inputs, &adversary.Random{PerRound: 0.3}, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("%s: agreement=%v validity=%v", name, res.Agreement, res.Validity)
		}
	}
}
