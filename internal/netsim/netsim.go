// Package netsim runs the same sim.Process protocol implementations
// over real concurrency: one goroutine per process, channels as links,
// and a coordinator enforcing the synchronous round structure (the
// standard way lock-step rounds are deployed on an asynchronous
// substrate with a synchronizer).
//
// Because each process's behaviour depends only on its inbox sequence
// and its private rng stream, a netsim execution is bit-for-bit
// equivalent to the sequential sim engine under the same adversary and
// seeds — the equivalence test in this package checks exactly that.
// The coordinator plays the network: it collects every Phase-A output,
// consults the adversary, applies the crash plans, and routes the
// surviving messages.
//
// Limitation: the adversary view's Exec field is nil here (there is no
// clonable execution mid-flight), so look-ahead adversaries like
// valency.LowerBound require the sequential engine.
package netsim

import (
	"fmt"
	"sync"

	"synran/internal/rng"
	"synran/internal/sim"
)

// phaseOut is what a process goroutine reports after Phase A.
type phaseOut struct {
	payload int64
	send    bool
	stopped bool
}

// roundIn is what the coordinator hands a process goroutine.
type roundIn struct {
	round int
	inbox []sim.Recv
}

// Run executes the protocol under adv with one goroutine per process.
// It mirrors sim.Execution's semantics and returns the same Result.
func Run(cfg sim.Config, procs []sim.Process, inputs []int, adv sim.Adversary, advSeed uint64) (*sim.Result, error) {
	n := cfg.N
	if n <= 0 || len(procs) != n || len(inputs) != n {
		return nil, fmt.Errorf("netsim: inconsistent sizes: n=%d procs=%d inputs=%d", n, len(procs), len(inputs))
	}
	if cfg.T < 0 || cfg.T > n {
		return nil, fmt.Errorf("netsim: T = %d out of [0, %d]", cfg.T, n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = sim.DefaultMaxRounds(n)
	}

	ins := make([]chan roundIn, n)
	outs := make([]chan phaseOut, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ins[i] = make(chan roundIn)
		outs[i] = make(chan phaseOut, 1)
		wg.Add(1)
		go func(p sim.Process, in chan roundIn, out chan phaseOut) {
			defer wg.Done()
			for msg := range in {
				payload, send := p.Round(msg.round, msg.inbox)
				out <- phaseOut{payload: payload, send: send, stopped: p.Stopped()}
			}
		}(procs[i], ins[i], outs[i])
	}
	defer func() {
		for _, ch := range ins {
			close(ch)
		}
		wg.Wait()
	}()

	var (
		alive       = make([]bool, n)
		halted      = make([]bool, n)
		decidedSeen = make([]bool, n)
		payloads    = make([]int64, n)
		sending     = make([]bool, n)
		inboxes     = make([][]sim.Recv, n)
		advRng      = rng.New(advSeed)
		crashed     = 0

		decideRound, haltRound int
	)
	for i := range alive {
		alive[i] = true
	}

	active := func() bool {
		for i := range alive {
			if alive[i] && !halted[i] {
				return true
			}
		}
		return false
	}

	for r := 1; active(); r++ {
		if r > cfg.MaxRounds {
			return nil, fmt.Errorf("%w (netsim, adversary %q)", sim.ErrMaxRounds, adv.Name())
		}

		// Phase A, concurrently on every live process goroutine.
		for i := 0; i < n; i++ {
			if alive[i] && !halted[i] {
				ins[i] <- roundIn{round: r, inbox: inboxes[i]}
			} else {
				sending[i] = false
			}
		}
		stoppedNow := make([]bool, n)
		for i := 0; i < n; i++ {
			if alive[i] && !halted[i] {
				o := <-outs[i]
				payloads[i], sending[i], stoppedNow[i] = o.payload, o.send, o.stopped
			}
		}

		// Consult the adversary (no Exec: see package doc).
		view := sim.NewView(sim.ViewState{
			Round:    r,
			N:        n,
			T:        cfg.T,
			Budget:   cfg.T - crashed,
			Alive:    alive,
			Halted:   halted,
			Sending:  sending,
			Payloads: payloads,
			Procs:    procs,
			Rng:      advRng,
		})
		if obs := cfg.Observer; obs != nil {
			obs.OnRound(r, view)
		}
		deliver := make([]*sim.BitSet, n)
		for _, plan := range adv.Plan(view) {
			v := plan.Victim
			if v < 0 || v >= n || !alive[v] || crashed >= cfg.T {
				continue
			}
			alive[v] = false
			crashed++
			if plan.Deliver != nil {
				deliver[v] = plan.Deliver.Clone()
			} else {
				deliver[v] = sim.NewBitSet(n)
			}
			if obs := cfg.Observer; obs != nil {
				d := 0
				if sending[v] {
					d = deliver[v].Count()
				}
				obs.OnCrash(r, v, d)
			}
		}

		// Phase B: route messages.
		next := make([][]sim.Recv, n)
		for i := 0; i < n; i++ {
			if !sending[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if j == i || !alive[j] || halted[j] || stoppedNow[j] {
					continue
				}
				if deliver[i] != nil && !deliver[i].Get(j) {
					continue
				}
				next[j] = append(next[j], sim.Recv{From: i, Payload: payloads[i]})
			}
		}
		inboxes = next

		// Bookkeeping mirrors the sequential engine.
		allDecided := true
		anyActive := false
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			if dv, ok := procs[i].Decided(); !ok {
				allDecided = false
			} else if !decidedSeen[i] {
				decidedSeen[i] = true
				if obs := cfg.Observer; obs != nil {
					obs.OnDecide(r, i, dv)
				}
			}
			if !halted[i] && stoppedNow[i] {
				halted[i] = true
				if obs := cfg.Observer; obs != nil {
					obs.OnHalt(r, i)
				}
			}
			if alive[i] && !halted[i] {
				anyActive = true
			}
		}
		if decideRound == 0 && allDecided {
			decideRound = r
		}
		if haltRound == 0 && !anyActive {
			haltRound = r
		}
	}

	return assemble(procs, inputs, alive, decideRound, haltRound, crashed), nil
}

// assemble builds a sim.Result identical in semantics to the sequential
// engine's Result method.
func assemble(procs []sim.Process, inputs []int, alive []bool, decideRound, haltRound, crashed int) *sim.Result {
	n := len(procs)
	res := &sim.Result{
		DecideRounds: decideRound,
		HaltRounds:   haltRound,
		Crashes:      crashed,
		Decisions:    make([]int, n),
		Decided:      make([]bool, n),
		Inputs:       append([]int(nil), inputs...),
	}
	for i := range res.Decisions {
		res.Decisions[i] = -1
	}
	common := -1
	agreement := true
	for i, p := range procs {
		if !alive[i] {
			continue
		}
		res.Survivors++
		v, ok := p.Decided()
		if !ok {
			agreement = false
			continue
		}
		res.Decisions[i] = v
		res.Decided[i] = true
		if common == -1 {
			common = v
		} else if common != v {
			agreement = false
		}
	}
	res.Agreement = agreement
	res.Validity = true
	allSame := true
	for _, x := range inputs[1:] {
		if x != inputs[0] {
			allSame = false
		}
	}
	if allSame && n > 0 {
		for i := range procs {
			if res.Decided[i] && res.Decisions[i] != inputs[0] {
				res.Validity = false
			}
		}
	}
	if res.Survivors == 0 {
		res.Agreement = true
	}
	return res
}
