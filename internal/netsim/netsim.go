// Package netsim runs the same sim.Process protocol implementations
// over real concurrency: one goroutine per process, channels as links,
// and a coordinator enforcing the synchronous round structure (the
// standard way lock-step rounds are deployed on an asynchronous
// substrate with a synchronizer).
//
// Because each process's behaviour depends only on its inbox sequence
// and its private rng stream, a netsim execution is bit-for-bit
// equivalent to the sequential sim engine under the same adversary and
// seeds — the equivalence test in this package checks exactly that.
// The coordinator plays the network: it collects every Phase-A output,
// consults the adversary, applies the crash plans, and routes the
// surviving messages.
//
// Unlike the paper's §3.1 model, the coordinator here is NOT a perfect
// synchronizer: it is hardened against a faulty substrate (see
// internal/chaos and DESIGN.md "Fault model vs §3.1"). Per-round
// deadlines with bounded re-polling and exponential backoff recover
// stalled processes; dropped messages are retransmitted, and
// unrecoverable omissions demote the sender to a crash fault (partial
// delivery, exactly CrashPlan semantics) so fail-stop semantics are
// preserved; duplicates are deduplicated; late messages are discarded
// as stale; panics are isolated into crash faults with a structured
// Result annotation. Crash-equivalent chaos faults (demotions, panics)
// are charged to an explicit fault budget distinct from the adversary's
// T; when the budget is exhausted or MaxRounds is hit, Run returns a
// partial Result with fault accounting and a typed error instead of
// hanging.
//
// Limitation: the adversary view's Exec field is nil here (there is no
// clonable execution mid-flight), so look-ahead adversaries like
// valency.LowerBound require the sequential engine.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"synran/internal/chaos"
	"synran/internal/rng"
	"synran/internal/sim"
)

// ErrFaultBudget reports that the runner's crash-equivalent fault budget
// (Options.FaultBudget) was exhausted: one more demotion or panic would
// have been needed to keep the synchronous abstraction intact, so the
// runner degraded gracefully and returned a partial Result instead.
var ErrFaultBudget = errors.New("netsim: chaos fault budget exhausted")

// Options harden the live runner against a faulty substrate. The zero
// value reproduces the perfect-synchronizer behaviour (no injected
// faults, no deadlines — but panics are still isolated, never allowed
// to abort the whole binary).
type Options struct {
	// Injector supplies deterministic substrate faults (nil = none).
	Injector *chaos.Injector
	// RoundDeadline is the wall-clock budget of the first wait for a
	// process's Phase-A output. 0 blocks forever — unless Injector is
	// set, in which case it defaults to 200ms (a chaotic substrate
	// without deadlines could hang).
	RoundDeadline time.Duration
	// Backoff is the wait after the first missed deadline; each further
	// re-poll doubles it (exponential backoff). Defaults to
	// RoundDeadline/2.
	Backoff time.Duration
	// DeadlineMisses is the number of consecutive missed deadline
	// windows after which a process is demoted to a crash fault.
	// Defaults to 3.
	DeadlineMisses int
	// Retransmits bounds the re-send attempts used to recover a dropped
	// or delayed message before the omission demotes the sender.
	// Defaults to 2.
	Retransmits int
	// FaultBudget is the number of crash-equivalent faults (demotions +
	// panics) the runner may absorb, distinct from the adversary's T.
	// The boundary is exact: a budget of k absorbs exactly k faults, and
	// only a (k+1)-th chaos fault ends the run with ErrFaultBudget and a
	// partial Result — so FaultBudget: 0 aborts on the very first chaos
	// fault, never after it (TestFaultBudgetBoundary pins both edges).
	// Adversarial omission demotions (sim.Omitter) draw from the same
	// ledger but are skipped deterministically once it is spent rather
	// than aborting: they are scheduled faults, not substrate surprises,
	// and every lane must degrade them identically. The ≤ t resilience
	// condition of the protocols is the caller's to respect: adversary
	// crashes + FaultBudget ≤ T.
	FaultBudget int
}

// normalized fills in the defaults documented on Options.
func (o Options) normalized() Options {
	if o.Injector != nil && o.RoundDeadline <= 0 {
		o.RoundDeadline = 200 * time.Millisecond
	}
	if o.RoundDeadline > 0 && o.Backoff <= 0 {
		o.Backoff = o.RoundDeadline / 2
	}
	if o.DeadlineMisses <= 0 {
		o.DeadlineMisses = 3
	}
	if o.Retransmits < 0 {
		o.Retransmits = 0
	} else if o.Retransmits == 0 {
		o.Retransmits = 2
	}
	return o
}

// roundIn is what the coordinator hands a process goroutine.
type roundIn struct {
	round int
	inbox []sim.Recv
	fault chaos.ProcFault
}

// phaseOut is what a process goroutine reports after Phase A.
type phaseOut struct {
	round    int
	payload  int64
	send     bool
	stopped  bool
	panicked bool
	panicMsg string
}

// runner is one live execution in flight.
type runner struct {
	cfg    sim.Config
	opts   Options
	n      int
	procs  []sim.Process
	inputs []int
	adv    sim.Adversary

	ins  []chan roundIn
	outs []chan phaseOut
	quit chan struct{}
	wg   sync.WaitGroup

	alive       []bool
	halted      []bool
	decidedSeen []bool
	payloads    []int64
	sending     []bool
	inboxes     [][]sim.Recv
	advRng      *rng.Stream
	advCrashed  int

	faults   sim.Faults
	notes    []string
	messages int // deliveries so far (the Result.Messages accounting)
	// pendingStale[r] counts delayed message copies scheduled to arrive
	// in round r; the synchronizer discards them as stale on arrival
	// (their round has closed), which is when Faults.Delayed counts them.
	pendingStale map[int]int

	decideRound, haltRound int
}

// Run executes the protocol under adv with one goroutine per process.
// It mirrors sim.Execution's semantics and returns the same Result.
// Unlike the pre-hardening runner, a panicking Process yields a typed
// error with a partial Result instead of aborting the whole binary.
func Run(cfg sim.Config, procs []sim.Process, inputs []int, adv sim.Adversary, advSeed uint64) (*sim.Result, error) {
	return RunChaos(cfg, procs, inputs, adv, advSeed, Options{})
}

// RunChaos executes the protocol on the hardened synchronizer under the
// given chaos options. With a zero-fault injector the execution is
// byte-identical to Run (and to the sequential sim engine). On graceful
// degradation (ErrFaultBudget, sim.ErrMaxRounds) the returned Result is
// non-nil, partial, and carries the fault accounting.
func RunChaos(cfg sim.Config, procs []sim.Process, inputs []int, adv sim.Adversary, advSeed uint64, opts Options) (*sim.Result, error) {
	n := cfg.N
	if n <= 0 || len(procs) != n || len(inputs) != n {
		return nil, fmt.Errorf("netsim: inconsistent sizes: n=%d procs=%d inputs=%d", n, len(procs), len(inputs))
	}
	if cfg.T < 0 || cfg.T > n {
		return nil, fmt.Errorf("netsim: T = %d out of [0, %d]", cfg.T, n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = sim.DefaultMaxRounds(n)
	}
	r := &runner{
		cfg: cfg, opts: opts.normalized(), n: n,
		procs: procs, inputs: inputs, adv: adv,
		ins:  make([]chan roundIn, n),
		outs: make([]chan phaseOut, n),
		quit: make(chan struct{}),

		alive:        make([]bool, n),
		halted:       make([]bool, n),
		decidedSeen:  make([]bool, n),
		payloads:     make([]int64, n),
		sending:      make([]bool, n),
		inboxes:      make([][]sim.Recv, n),
		advRng:       rng.New(advSeed),
		pendingStale: map[int]int{},
	}
	for i := 0; i < n; i++ {
		r.alive[i] = true
		r.ins[i] = make(chan roundIn)
		// Capacity 1 so a goroutine that recovers from a stall after its
		// demotion can park its (never read) output without blocking.
		r.outs[i] = make(chan phaseOut, 1)
		r.wg.Add(1)
		go r.procLoop(procs[i], r.ins[i], r.outs[i])
	}
	defer func() {
		close(r.quit) // release hung or stalled goroutines first
		for _, ch := range r.ins {
			close(ch)
		}
		r.wg.Wait()
	}()
	return r.run()
}

// procLoop is the per-process goroutine: it executes one Phase A per
// roundIn, isolating panics and honouring injected stalls and hangs.
func (r *runner) procLoop(p sim.Process, in chan roundIn, out chan phaseOut) {
	defer r.wg.Done()
	for msg := range in {
		o, ok := r.execRound(p, msg)
		if !ok {
			return // released from a hang by shutdown; never report
		}
		out <- o
	}
}

// execRound runs one Phase A on p, converting a panic (injected or the
// protocol's own) into a structured phaseOut instead of an abort.
// ok=false means the goroutine was released by shutdown mid-fault.
func (r *runner) execRound(p sim.Process, msg roundIn) (o phaseOut, ok bool) {
	o = phaseOut{round: msg.round}
	ok = true
	defer func() {
		if rec := recover(); rec != nil {
			o.panicked = true
			o.panicMsg = fmt.Sprint(rec)
		}
	}()
	if msg.fault.Hang {
		<-r.quit
		return o, false
	}
	if msg.fault.Stall > 0 {
		t := time.NewTimer(msg.fault.Stall)
		select {
		case <-t.C:
		case <-r.quit:
			t.Stop()
			return o, false
		}
	}
	if msg.fault.Panic {
		panic(fmt.Sprintf("chaos: injected panic in round %d", msg.round))
	}
	o.payload, o.send = p.Round(msg.round, msg.inbox)
	o.stopped = p.Stopped()
	return o, true
}

// maxBackoffShift caps the exponential backoff at 64× Backoff. Go's
// shift does not saturate — Backoff<<63 flips the sign and wider shifts
// zero out — and timer.Reset with a non-positive duration fires
// immediately, so an unclamped shift with DeadlineMisses > 64 silently
// turned backoff into a busy spin. TestBackoffWaitClamped and
// TestManyDeadlineMissesNoBusySpin pin the fix.
const maxBackoffShift = 6

// backoffWait returns the wait before re-poll number misses (1-based):
// Backoff, 2·Backoff, 4·Backoff, ..., capped at Backoff<<maxBackoffShift.
func backoffWait(backoff time.Duration, misses int) time.Duration {
	shift := misses - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return backoff << shift
}

// pollOut waits for process i's round-r Phase-A output. Without a
// deadline it blocks. With one, it waits up to DeadlineMisses windows
// (RoundDeadline, then Backoff, 2·Backoff, ...), re-polling after each
// miss; ok=false means every window was missed and i must be demoted.
func (r *runner) pollOut(i, round int) (phaseOut, int, bool) {
	if r.opts.RoundDeadline <= 0 {
		for {
			o := <-r.outs[i]
			if o.round == round {
				return o, 0, true
			}
		}
	}
	wait := r.opts.RoundDeadline
	misses := 0
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case o := <-r.outs[i]:
			if o.round != round {
				continue // stale output from a pre-demotion round; discard
			}
			return o, misses, true
		case <-timer.C:
			misses++
			if m := r.cfg.Metrics; m != nil {
				m.DeadlineMisses.Inc(r.cfg.MetricsShard)
			}
			if misses >= r.opts.DeadlineMisses {
				return phaseOut{}, misses, false
			}
			if m := r.cfg.Metrics; m != nil {
				m.BackoffRepolls.Inc(r.cfg.MetricsShard)
			}
			wait = backoffWait(r.opts.Backoff, misses)
			timer.Reset(wait)
		}
	}
}

// spendBudget charges one crash-equivalent chaos fault, or reports that
// the budget is exhausted (the graceful-degradation path).
func (r *runner) spendBudget(round, victim int, kind string) error {
	if r.faults.CrashEquivalent() >= r.opts.FaultBudget {
		return fmt.Errorf("%w: cannot absorb %s of p%d in round %d (budget %d spent)",
			ErrFaultBudget, kind, victim, round, r.opts.FaultBudget)
	}
	return nil
}

// kill converts process victim into a crash fault: it stops sending and
// receiving from this round on. delivered is the number of receivers
// that already got its round message (0 when it never sent).
func (r *runner) kill(round, victim, delivered int, note string) {
	r.alive[victim] = false
	r.sending[victim] = false
	r.notes = append(r.notes, fmt.Sprintf("round %d: p%d %s", round, victim, note))
	if obs := r.cfg.Observer; obs != nil {
		obs.OnCrash(round, victim, delivered)
	}
}

// abortPhaseA prepares the partial Result for a budget-exhausted abort
// during Phase A of the given round. The failing process is dead in
// reality even though the budget could not absorb it, and every process
// whose round output was not consumed yet is drained — or, if it never
// responds, abandoned as dead — so that result() cannot read a Process
// a goroutine is still driving.
func (r *runner) abortPhaseA(round, failed int, pending []bool) *sim.Result {
	r.alive[failed] = false
	r.sending[failed] = false
	for j := 0; j < r.n; j++ {
		if !pending[j] {
			continue
		}
		if _, _, ok := r.pollOut(j, round); !ok {
			r.alive[j] = false
			r.sending[j] = false
			r.notes = append(r.notes, fmt.Sprintf("round %d: p%d abandoned during abort (no response)", round, j))
		}
	}
	return r.result(true)
}

func (r *runner) active() bool {
	for i := range r.alive {
		if r.alive[i] && !r.halted[i] {
			return true
		}
	}
	return false
}

// run drives the rounds. On graceful degradation it returns a partial
// Result alongside the typed error.
func (r *runner) run() (*sim.Result, error) {
	m, shard := r.cfg.Metrics, r.cfg.MetricsShard
	for round := 1; r.active(); round++ {
		if round > r.cfg.MaxRounds {
			return r.result(true), fmt.Errorf("%w (netsim, adversary %q)", sim.ErrMaxRounds, r.adv.Name())
		}
		// Delayed copies scheduled for this round arrive now; their round
		// has closed, so the synchronizer discards them as stale.
		if c := r.pendingStale[round]; c > 0 {
			r.faults.Delayed += c
			if m != nil {
				m.MsgDelayed.Add(shard, uint64(c))
			}
			delete(r.pendingStale, round)
		}

		// Phase A, concurrently on every live process goroutine. pending
		// tracks processes whose round output has not been consumed yet:
		// on an abort mid-poll they must be drained (or abandoned) before
		// assembling the partial Result, because their goroutines may
		// still be driving the Process state machines.
		pending := make([]bool, r.n)
		for i := 0; i < r.n; i++ {
			if !r.alive[i] || r.halted[i] {
				r.sending[i] = false
				continue
			}
			var fault chaos.ProcFault
			if r.opts.Injector != nil {
				fault = r.opts.Injector.ProcFault(round, i)
				if fault.Stall > 0 {
					r.faults.Stalled++
					if m != nil {
						m.Stalls.Inc(shard)
					}
				}
			}
			r.ins[i] <- roundIn{round: round, inbox: r.inboxes[i], fault: fault}
			pending[i] = true
		}
		stoppedNow := make([]bool, r.n)
		for i := 0; i < r.n; i++ {
			if !pending[i] {
				continue
			}
			o, misses, ok := r.pollOut(i, round)
			pending[i] = false
			switch {
			case !ok:
				if err := r.spendBudget(round, i, "deadline demotion"); err != nil {
					return r.abortPhaseA(round, i, pending), err
				}
				r.faults.Demoted++
				if m != nil {
					m.Demotions.Inc(shard)
				}
				r.kill(round, i, 0, fmt.Sprintf("demoted (missed %d consecutive deadlines)", misses))
			case o.panicked:
				if err := r.spendBudget(round, i, "panic"); err != nil {
					return r.abortPhaseA(round, i, pending), err
				}
				r.faults.Panics++
				if m != nil {
					m.Panics.Inc(shard)
				}
				r.kill(round, i, 0, fmt.Sprintf("panicked: %s", o.panicMsg))
			default:
				r.payloads[i], r.sending[i], stoppedNow[i] = o.payload, o.send, o.stopped
			}
		}

		// Consult the adversary (no Exec: see package doc).
		view := sim.NewView(sim.ViewState{
			Round:    round,
			N:        r.n,
			T:        r.cfg.T,
			Budget:   r.cfg.T - r.advCrashed,
			Alive:    r.alive,
			Halted:   r.halted,
			Sending:  r.sending,
			Payloads: r.payloads,
			Procs:    r.procs,
			Rng:      r.advRng,
		})
		if obs := r.cfg.Observer; obs != nil {
			obs.OnRound(round, view)
		}
		// Plan and Omit are both consulted on the pre-crash view, matching
		// the sequential engine's evaluation order exactly.
		plans := r.adv.Plan(view)
		var omissions []sim.CrashPlan
		if om, ok := r.adv.(sim.Omitter); ok {
			omissions = om.Omit(view)
		}
		deliver := make([]*sim.BitSet, r.n)
		for _, plan := range plans {
			v := plan.Victim
			if v < 0 || v >= r.n || !r.alive[v] || r.advCrashed >= r.cfg.T {
				continue
			}
			r.alive[v] = false
			r.advCrashed++
			if m != nil {
				m.CrashesAdversary.Inc(shard)
			}
			if plan.Deliver != nil {
				deliver[v] = plan.Deliver.Clone()
			} else {
				deliver[v] = sim.NewBitSet(r.n)
			}
			if obs := r.cfg.Observer; obs != nil {
				d := 0
				if r.sending[v] {
					d = deliver[v].Count()
				}
				obs.OnCrash(round, v, d)
			}
		}
		// Adversarial omission demotions, after the crashes: the victim's
		// outgoing links are silenced with CrashPlan partial-delivery
		// semantics, charged to the fault budget as a demotion. Unlike
		// substrate faults these never abort the run — plans past the
		// budget are skipped deterministically, exactly as on the
		// lock-step engines (sim.FinishRoundOmitted), so all lanes agree.
		// The victim keeps its sending flag: its in-flight round message
		// still reaches the receivers its Deliver mask names.
		omitSpent := r.faults.CrashEquivalent()
		for _, plan := range omissions {
			v := plan.Victim
			if v < 0 || v >= r.n || !r.alive[v] || omitSpent >= r.opts.FaultBudget {
				continue
			}
			r.alive[v] = false
			r.faults.Demoted++
			omitSpent++
			if m != nil {
				m.Demotions.Inc(shard)
			}
			if plan.Deliver != nil {
				deliver[v] = plan.Deliver.Clone()
			} else {
				deliver[v] = sim.NewBitSet(r.n)
			}
			if obs := r.cfg.Observer; obs != nil {
				d := 0
				if r.sending[v] {
					d = deliver[v].Count()
				}
				obs.OnCrash(round, v, d)
			}
		}

		// Phase B: route messages through the chaotic substrate.
		next := make([][]sim.Recv, r.n)
		roundDelivered := 0
		for i := 0; i < r.n; i++ {
			if !r.sending[i] {
				continue
			}
			sent := 0
			var omitted []int
			for j := 0; j < r.n; j++ {
				if j == i || !r.alive[j] || r.halted[j] {
					continue
				}
				if deliver[i] != nil && !deliver[i].Get(j) {
					continue
				}
				if stoppedNow[j] {
					// The receiver halted in this round's Phase A, so the
					// channel write would never be read and the synchronizer
					// elides it. In the §3.1 model the delivery still happens
					// (the sequential engine counts it): on the perfect
					// zero-chaos substrate, count it so Result.Messages
					// matches the sequential engine exactly. Under chaos the
					// transmission is never attempted, so it draws no fates
					// and absorbs no faults — accounting there is unchanged.
					if r.opts.Injector == nil {
						roundDelivered++
					}
					continue
				}
				if r.transmit(round, i, j) {
					next[j] = append(next[j], sim.Recv{From: i, Payload: r.payloads[i]})
					sent++
					roundDelivered++
				} else {
					omitted = append(omitted, j)
				}
			}
			if len(omitted) > 0 && r.alive[i] {
				// Unrecovered omission from a live sender: fail-stop
				// semantics demand the sender crash, with exactly the
				// partial delivery that actually happened (the CrashPlan
				// observable). Charged to the chaos budget, not the
				// adversary's.
				if err := r.spendBudget(round, i, "omission demotion"); err != nil {
					return r.result(true), err
				}
				r.faults.Demoted++
				if m != nil {
					m.Demotions.Inc(shard)
				}
				r.kill(round, i, sent, fmt.Sprintf("demoted (unrecovered omission to %d receiver(s))", len(omitted)))
			}
		}
		r.inboxes = next
		r.messages += roundDelivered
		if m != nil {
			m.Messages.Add(shard, uint64(roundDelivered))
		}

		// Bookkeeping mirrors the sequential engine.
		allDecided := true
		anyActive := false
		for i := 0; i < r.n; i++ {
			if !r.alive[i] {
				continue
			}
			if dv, ok := r.procs[i].Decided(); !ok {
				allDecided = false
			} else if !r.decidedSeen[i] {
				r.decidedSeen[i] = true
				if obs := r.cfg.Observer; obs != nil {
					obs.OnDecide(round, i, dv)
				}
				if m != nil {
					m.Decisions.Inc(shard)
				}
			}
			if !r.halted[i] && stoppedNow[i] {
				r.halted[i] = true
				if obs := r.cfg.Observer; obs != nil {
					obs.OnHalt(round, i)
				}
				if m != nil {
					m.Halts.Inc(shard)
				}
			}
			if r.alive[i] && !r.halted[i] {
				anyActive = true
			}
		}
		if r.decideRound == 0 && allDecided {
			r.decideRound = round
			if m != nil {
				m.DecideRounds.Observe(shard, uint64(round))
			}
		}
		if r.haltRound == 0 && !anyActive {
			r.haltRound = round
		}
		if m != nil {
			m.Rounds.Inc(shard)
		}
	}
	return r.result(false), nil
}

// transmit pushes one message through the injector, retransmitting after
// drop/delay faults up to the retry bound. It reports whether a copy was
// delivered within the round. Duplicates are delivered exactly once (the
// synchronizer deduplicates); delayed copies are queued and later
// discarded as stale.
func (r *runner) transmit(round, from, to int) bool {
	inj := r.opts.Injector
	if inj == nil {
		return true
	}
	m, shard := r.cfg.Metrics, r.cfg.MetricsShard
	for attempt := 0; attempt <= r.opts.Retransmits; attempt++ {
		if attempt > 0 && m != nil {
			m.MsgRetransmitted.Inc(shard)
		}
		fate, k := inj.MessageFate(round, from, to, attempt)
		switch fate {
		case chaos.FateDeliver:
			return true
		case chaos.FateDup:
			r.faults.Duplicated++
			if m != nil {
				m.MsgDuplicated.Inc(shard)
			}
			return true
		case chaos.FateDrop:
			r.faults.Dropped++
			if m != nil {
				m.MsgDropped.Inc(shard)
			}
		case chaos.FateDelay:
			r.pendingStale[round+k]++
		}
	}
	return false
}

// result assembles the sim.Result (semantics identical to the
// sequential engine's Result method), attaching the fault accounting.
func (r *runner) result(partial bool) *sim.Result {
	res := assemble(r.procs, r.inputs, r.alive, r.decideRound, r.haltRound, r.advCrashed)
	// Message accounting used to be left at zero here — a real divergence
	// from the sequential engine that the conformance harness flushed out.
	res.Messages = r.messages
	// Delayed copies still in flight when the run ends would have been
	// discarded as stale; account for them now so Faults is a function of
	// (seed, config) alone, not of when the run terminated.
	for _, c := range r.pendingStale {
		r.faults.Delayed += c
		if m := r.cfg.Metrics; m != nil {
			m.MsgDelayed.Add(r.cfg.MetricsShard, uint64(c))
		}
	}
	res.Faults = r.faults
	res.FaultNotes = r.notes
	res.Partial = partial
	return res
}

// assemble builds a sim.Result identical in semantics to the sequential
// engine's Result method.
func assemble(procs []sim.Process, inputs []int, alive []bool, decideRound, haltRound, crashed int) *sim.Result {
	n := len(procs)
	res := &sim.Result{
		DecideRounds: decideRound,
		HaltRounds:   haltRound,
		Crashes:      crashed,
		Decisions:    make([]int, n),
		Decided:      make([]bool, n),
		Inputs:       append([]int(nil), inputs...),
	}
	for i := range res.Decisions {
		res.Decisions[i] = -1
	}
	common := -1
	agreement := true
	for i, p := range procs {
		if !alive[i] {
			continue
		}
		res.Survivors++
		v, ok := p.Decided()
		if !ok {
			agreement = false
			continue
		}
		res.Decisions[i] = v
		res.Decided[i] = true
		if common == -1 {
			common = v
		} else if common != v {
			agreement = false
		}
	}
	res.Agreement = agreement
	res.Validity = true
	allSame := true
	for _, x := range inputs[1:] {
		if x != inputs[0] {
			allSame = false
		}
	}
	if allSame && n > 0 {
		for i := range procs {
			if res.Decided[i] && res.Decisions[i] != inputs[0] {
				res.Validity = false
			}
		}
	}
	if res.Survivors == 0 {
		res.Agreement = true
	}
	return res
}
