package netsim

import (
	"testing"
	"time"

	"synran/internal/adversary"
	"synran/internal/chaos"
	"synran/internal/metrics"
	"synran/internal/protocol/floodset"
	"synran/internal/sim"
)

// TestChaosMetricsMatchFaultAccounting pins the contract between the
// metrics layer and the runner's own fault accounting: every emission
// site sits next to its Faults increment, so the merged counters must
// equal the Result's Faults field for field. This is the cross-check
// that keeps the observability layer honest — a drifted counter means
// an emission site moved away from its bookkeeping.
func TestChaosMetricsMatchFaultAccounting(t *testing.T) {
	const n = 9
	inputs := halfInputs(n)
	cfg := chaos.Config{
		Drop: 0.05, Dup: 0.05, Delay: 0.03, MaxDelay: 2,
		Stall: 0.1, MaxStall: 2 * time.Millisecond,
		UntilRound: 20,
	}
	eng := metrics.NewEngine(metrics.New(1))
	procs, err := floodset.NewProcs(n, 3, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, 17, cfg)
	opts.FaultBudget = 3
	res, err := RunChaos(sim.Config{N: n, T: 3, Metrics: eng}, procs, inputs,
		adversary.None{}, 17, opts)
	if err != nil {
		t.Fatal(err)
	}

	f := res.Faults
	for _, c := range []struct {
		name string
		got  uint64
		want int
	}{
		{"messages_dropped", eng.MsgDropped.Value(), f.Dropped},
		{"messages_duplicated", eng.MsgDuplicated.Value(), f.Duplicated},
		{"messages_delayed", eng.MsgDelayed.Value(), f.Delayed},
		{"proc_stalls", eng.Stalls.Value(), f.Stalled},
		{"proc_panics", eng.Panics.Value(), f.Panics},
		{"proc_demotions", eng.Demotions.Value(), f.Demoted},
	} {
		if c.got != uint64(c.want) {
			t.Errorf("%s = %d, want %d (Faults accounting %+v)", c.name, c.got, c.want, f)
		}
	}
	if f.Dropped == 0 && f.Duplicated == 0 && f.Delayed == 0 && f.Stalled == 0 {
		t.Fatalf("injector produced no faults — the cross-check is vacuous: %+v", f)
	}

	// The engine-side instruments must agree with the Result too.
	if got := eng.Rounds.Value(); got != uint64(res.HaltRounds) {
		t.Errorf("engine_rounds = %d, want HaltRounds %d", got, res.HaltRounds)
	}
	decided := 0
	for _, ok := range res.Decided {
		if ok {
			decided++
		}
	}
	if got := eng.Decisions.Value(); got != uint64(decided) {
		t.Errorf("process_decisions = %d, want %d", got, decided)
	}
	if got := eng.CrashesAdversary.Value(); got != 0 {
		t.Errorf("crashes_adversary = %d under adversary.None", got)
	}
	// Retransmissions have no Faults counterpart; each one recovers a
	// dropped or within-round-delayed copy, so the count is bounded.
	if got := eng.MsgRetransmitted.Value(); got > uint64(f.Dropped+f.Delayed) {
		t.Errorf("messages_retransmitted = %d exceeds dropped+delayed = %d", got, f.Dropped+f.Delayed)
	}
	if eng.Messages.Value() == 0 {
		t.Error("messages_delivered stayed zero over a full run")
	}
}
