package netsim

import (
	"errors"
	"testing"
	"time"

	"synran/internal/adversary"
	"synran/internal/chaos"
	"synran/internal/core"
	"synran/internal/protocol/benor"
	"synran/internal/protocol/floodset"
	"synran/internal/sim"
)

func mustInjector(t *testing.T, seed uint64, cfg chaos.Config) *chaos.Injector {
	t.Helper()
	inj, err := chaos.New(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// fastDeadlines keeps deadline-driven tests quick while leaving enough
// slack that a loaded CI machine cannot miss a window spuriously.
func fastDeadlines() Options {
	return Options{RoundDeadline: 150 * time.Millisecond, Backoff: 20 * time.Millisecond, DeadlineMisses: 2}
}

func TestZeroFaultChaosDigestEqualsSequential(t *testing.T) {
	// A zero-fault chaos config on the hardened runner (deadlines armed,
	// injector consulted for every message and process) must stay
	// byte-identical to the sequential lock-step engine.
	for _, n := range []int{5, 16} {
		for seed := uint64(0); seed < 4; seed++ {
			inputs := halfInputs(n)

			dSeq := sim.NewDigest()
			procsA, err := core.NewProcs(n, inputs, seed, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			exec, err := sim.NewExecution(sim.Config{N: n, T: n / 2, Observer: dSeq}, procsA, inputs, seed)
			if err != nil {
				t.Fatal(err)
			}
			seqRes, err := exec.Run(&adversary.Random{PerRound: 0.5})
			if err != nil {
				t.Fatal(err)
			}

			dChaos := sim.NewDigest()
			procsB, err := core.NewProcs(n, inputs, seed, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts := fastDeadlines()
			opts.Injector = mustInjector(t, seed, chaos.Config{})
			chaosRes, err := RunChaos(sim.Config{N: n, T: n / 2, Observer: dChaos}, procsB, inputs,
				&adversary.Random{PerRound: 0.5}, seed, opts)
			if err != nil {
				t.Fatal(err)
			}

			if dSeq.Sum() != dChaos.Sum() {
				t.Fatalf("n=%d seed=%d: digests differ: %s vs %s", n, seed, dSeq, dChaos)
			}
			if chaosRes.Faults != (sim.Faults{}) || chaosRes.Partial {
				t.Fatalf("n=%d seed=%d: zero-fault run reported faults %+v partial=%v",
					n, seed, chaosRes.Faults, chaosRes.Partial)
			}
			if seqRes.DecidedValue() != chaosRes.DecidedValue() ||
				seqRes.HaltRounds != chaosRes.HaltRounds {
				t.Fatalf("n=%d seed=%d: results differ: %+v vs %+v", n, seed, seqRes, chaosRes)
			}
		}
	}
}

// panicky panics in every round at or after `at` (1 = immediately).
type panicky struct{ at int }

func (p *panicky) Round(round int, inbox []sim.Recv) (int64, bool) {
	if round >= p.at {
		panic("protocol bug: nil map write")
	}
	return 1, true
}
func (p *panicky) Decided() (int, bool) { return 0, false }
func (p *panicky) Stopped() bool        { return false }
func (p *panicky) Clone() sim.Process   { return &panicky{at: p.at} }

func TestPanickingProcessYieldsErrorNotHang(t *testing.T) {
	// Regression for the pre-hardening runner, which leaked the panic out
	// of the process goroutine: the coordinator then blocked forever on
	// the dead process's output channel and the defer close/Wait pair
	// deadlocked. The hardened runner must convert the panic into a typed
	// error with a partial result, promptly.
	const n = 5
	inputs := halfInputs(n)
	procs, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	procs[2] = &panicky{at: 2}

	type outcome struct {
		res *sim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(sim.Config{N: n, T: 2}, procs, inputs, adversary.None{}, 7)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if !errors.Is(o.err, ErrFaultBudget) {
			t.Fatalf("err = %v, want ErrFaultBudget (zero budget, no chaos options)", o.err)
		}
		if o.res == nil || !o.res.Partial {
			t.Fatalf("result = %+v, want non-nil partial", o.res)
		}
		if o.res.Faults.Panics != 0 {
			t.Fatalf("unabsorbed panic must not be charged: %+v", o.res.Faults)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runner hung on a panicking process")
	}
}

func TestPanicAbsorbedByFaultBudget(t *testing.T) {
	// With budget for it, a panicking process becomes a crash fault and
	// the survivors still reach consensus.
	const n = 7
	inputs := halfInputs(n)
	procs, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	procs[0] = &panicky{at: 1}
	res, err := RunChaos(sim.Config{N: n, T: 2}, procs, inputs, adversary.None{}, 7,
		Options{FaultBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Panics != 1 || res.Partial {
		t.Fatalf("faults %+v partial=%v, want exactly one absorbed panic", res.Faults, res.Partial)
	}
	if len(res.FaultNotes) == 0 {
		t.Fatal("absorbed panic must leave a fault note")
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v after absorbed panic", res.Agreement, res.Validity)
	}
	if res.Crashes != 0 {
		t.Fatalf("chaos panic charged to the adversary: Crashes=%d", res.Crashes)
	}
}

func TestFaultBudgetBoundary(t *testing.T) {
	// Pins the exact budget semantics the Options.FaultBudget doc
	// promises: a budget of k absorbs exactly k crash-equivalent faults
	// and the (k+1)-th aborts, so FaultBudget: 0 rejects the very first
	// fault. Each panicky process costs exactly one fault (it is killed
	// on its first panic), making the fault count fully deterministic.
	const n = 9
	inputs := halfInputs(n)
	mkProcs := func(panickers int) []sim.Process {
		procs, err := floodset.NewProcs(n, 3, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < panickers; i++ {
			procs[i] = &panicky{at: 1}
		}
		return procs
	}

	// Budget 0: the first fault is rejected, never absorbed.
	res, err := RunChaos(sim.Config{N: n, T: 3}, mkProcs(1), inputs, adversary.None{}, 2,
		Options{FaultBudget: 0})
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("budget 0: err = %v, want ErrFaultBudget on the first fault", err)
	}
	if res == nil || !res.Partial || res.Faults.CrashEquivalent() != 0 {
		t.Fatalf("budget 0: result %+v, want partial with zero absorbed faults", res)
	}

	// Budget exactly k = 2 with exactly 2 faults: all absorbed, clean run.
	res, err = RunChaos(sim.Config{N: n, T: 3}, mkProcs(2), inputs, adversary.None{}, 2,
		Options{FaultBudget: 2})
	if err != nil {
		t.Fatalf("budget 2, 2 faults: err = %v, want clean completion", err)
	}
	if res.Partial || res.Faults.Panics != 2 {
		t.Fatalf("budget 2, 2 faults: partial=%v faults=%+v, want 2 absorbed panics", res.Partial, res.Faults)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("budget 2, 2 faults: agreement=%v validity=%v", res.Agreement, res.Validity)
	}

	// Budget k = 2 with 3 faults: the (k+1)-th aborts after k absorbed.
	res, err = RunChaos(sim.Config{N: n, T: 3}, mkProcs(3), inputs, adversary.None{}, 2,
		Options{FaultBudget: 2})
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("budget 2, 3 faults: err = %v, want ErrFaultBudget", err)
	}
	if res == nil || !res.Partial || res.Faults.CrashEquivalent() != 2 {
		t.Fatalf("budget 2, 3 faults: result %+v, want partial with exactly 2 absorbed", res)
	}
}

func TestHangDemotedAfterDeadlineMisses(t *testing.T) {
	// An injected hang blocks past every deadline window; the runner must
	// demote the process to a crash fault and move on.
	const n = 5
	inputs := halfInputs(n)
	procs, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, 3, chaos.Config{PerProc: map[int]chaos.ProcRates{0: {Hang: 1}}})
	opts.FaultBudget = 1
	res, err := RunChaos(sim.Config{N: n, T: 2}, procs, inputs, adversary.None{}, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Demoted != 1 {
		t.Fatalf("faults %+v, want one demotion", res.Faults)
	}
	if res.Decided[0] {
		t.Fatal("hung process must be counted dead, not decided")
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v after demotion", res.Agreement, res.Validity)
	}
}

func TestStallsRecoverWithoutSemanticEffect(t *testing.T) {
	// Stalls bounded well below the first deadline window always recover:
	// they are counted but the execution digest is unchanged.
	const n = 6
	inputs := halfInputs(n)
	seed := uint64(9)

	dPlain := sim.NewDigest()
	procsA, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sim.Config{N: n, T: 2, Observer: dPlain}, procsA, inputs, adversary.None{}, seed); err != nil {
		t.Fatal(err)
	}

	dStall := sim.NewDigest()
	procsB, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, seed, chaos.Config{Stall: 1, MaxStall: 2 * time.Millisecond})
	res, err := RunChaos(sim.Config{N: n, T: 2, Observer: dStall}, procsB, inputs, adversary.None{}, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dPlain.Sum() != dStall.Sum() {
		t.Fatalf("recovered stalls changed the execution: %s vs %s", dPlain, dStall)
	}
	if res.Faults.Stalled == 0 {
		t.Fatal("injected stalls were not counted")
	}
	if res.Faults.CrashEquivalent() != 0 {
		t.Fatalf("recovered stalls must not cost crash budget: %+v", res.Faults)
	}
}

func TestOmissionDemotionMatchesCrashPlan(t *testing.T) {
	// An unrecoverable omission (drop rate 1 on two links in round 2)
	// demotes the sender with exactly the partial delivery that happened.
	// That is CrashPlan-observable: a sequential run whose adversary
	// crashes the same victim in the same round with the matching Deliver
	// mask must produce a byte-identical digest.
	const n = 6
	inputs := halfInputs(n)
	seed := uint64(4)

	dLive := sim.NewDigest()
	procsA, err := floodset.NewProcs(n, 3, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, seed, chaos.Config{
		PerLink: map[chaos.Link]chaos.Rates{
			{From: 0, To: 1}: {Drop: 1},
			{From: 0, To: 2}: {Drop: 1},
		},
		FromRound: 2, UntilRound: 2,
	})
	opts.FaultBudget = 1
	liveRes, err := RunChaos(sim.Config{N: n, T: 3, Observer: dLive}, procsA, inputs, adversary.None{}, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Faults.Demoted != 1 || liveRes.Faults.Dropped == 0 {
		t.Fatalf("faults %+v, want one omission demotion with counted drops", liveRes.Faults)
	}

	mask := sim.NewBitSet(n)
	for j := 3; j < n; j++ {
		mask.Set(j)
	}
	dSeq := sim.NewDigest()
	procsB, err := floodset.NewProcs(n, 3, inputs)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.NewExecution(sim.Config{N: n, T: 3, Observer: dSeq}, procsB, inputs, seed)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := exec.Run(&adversary.Schedule{Plans: map[int][]sim.CrashPlan{
		2: {{Victim: 0, Deliver: mask}},
	}})
	if err != nil {
		t.Fatal(err)
	}

	if dLive.Sum() != dSeq.Sum() {
		t.Fatalf("omission demotion is not CrashPlan-equivalent: %s vs %s", dLive, dSeq)
	}
	if liveRes.DecidedValue() != seqRes.DecidedValue() {
		t.Fatalf("decisions differ: %d vs %d", liveRes.DecidedValue(), seqRes.DecidedValue())
	}
}

func TestPartialDeliveryDigestEquality(t *testing.T) {
	// CrashPlan.Deliver subsets must behave identically on both engines,
	// including masks that deliver to nobody and to a strict majority.
	const n = 8
	inputs := halfInputs(n)
	seed := uint64(21)

	some := sim.NewBitSet(n)
	for _, j := range []int{1, 4, 6} {
		some.Set(j)
	}
	plans := map[int][]sim.CrashPlan{
		1: {{Victim: 2, Deliver: some}},
		2: {{Victim: 5}}, // nil mask: message reaches no one
	}

	run := func(live bool) (uint64, *sim.Result) {
		d := sim.NewDigest()
		procs, err := core.NewProcs(n, inputs, seed, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sched := &adversary.Schedule{Plans: plans}
		if live {
			res, err := Run(sim.Config{N: n, T: 3, Observer: d}, procs, inputs, sched, seed)
			if err != nil {
				t.Fatal(err)
			}
			return d.Sum(), res
		}
		exec, err := sim.NewExecution(sim.Config{N: n, T: 3, Observer: d}, procs, inputs, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return d.Sum(), res
	}

	liveSum, liveRes := run(true)
	seqSum, seqRes := run(false)
	if liveSum != seqSum {
		t.Fatalf("partial delivery digests differ: %016x vs %016x", liveSum, seqSum)
	}
	if liveRes.Crashes != 2 || seqRes.Crashes != 2 {
		t.Fatalf("crashes %d/%d, want 2/2", liveRes.Crashes, seqRes.Crashes)
	}
}

func TestChaosRunDeterminism(t *testing.T) {
	// The whole chaotic execution — decisions, fault accounting, digest —
	// is a function of (seed, config) alone.
	const n = 9
	inputs := halfInputs(n)
	cfg := chaos.Config{
		Drop: 0.05, Dup: 0.05, Delay: 0.03, MaxDelay: 2,
		Stall: 0.1, MaxStall: 2 * time.Millisecond,
		UntilRound: 20,
	}
	run := func() (uint64, sim.Faults, int) {
		d := sim.NewDigest()
		procs, err := floodset.NewProcs(n, 3, inputs)
		if err != nil {
			t.Fatal(err)
		}
		opts := fastDeadlines()
		opts.Injector = mustInjector(t, 17, cfg)
		opts.FaultBudget = 3
		res, err := RunChaos(sim.Config{N: n, T: 3, Observer: d}, procs, inputs, adversary.None{}, 17, opts)
		if err != nil {
			t.Fatal(err)
		}
		return d.Sum(), res.Faults, res.DecidedValue()
	}
	s1, f1, v1 := run()
	s2, f2, v2 := run()
	if s1 != s2 || f1 != f2 || v1 != v2 {
		t.Fatalf("same (seed, config) diverged: %016x/%+v/%d vs %016x/%+v/%d", s1, f1, v1, s2, f2, v2)
	}
}

func TestChaosSoakNeverViolatesSafety(t *testing.T) {
	// Property soak: under a mixed fault schedule whose crash-equivalent
	// total is bounded by the budget (and the adversary is quiet, so the
	// ≤ t resilience condition holds), every protocol either completes
	// with Agreement+Validity or degrades gracefully with a typed error —
	// and even a partial result never contains conflicting decisions.
	const n = 9
	tt := 3
	inputs := halfInputs(n)
	cfg := chaos.Config{
		Drop: 0.04, Dup: 0.03, Delay: 0.02, MaxDelay: 2,
		Stall: 0.05, MaxStall: 2 * time.Millisecond,
		Panic:      0.004,
		UntilRound: 25,
	}
	builders := map[string]func() ([]sim.Process, error){
		"synran": func() ([]sim.Process, error) {
			return core.NewProcs(n, inputs, 1, core.Options{})
		},
		"floodset": func() ([]sim.Process, error) {
			return floodset.NewProcs(n, tt, inputs)
		},
		"benor": func() ([]sim.Process, error) {
			return benor.NewProcs(n, inputs, 1)
		},
	}
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for name, mk := range builders {
		completed, degraded := 0, 0
		for seed := uint64(0); seed < uint64(seeds); seed++ {
			procs, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			opts := fastDeadlines()
			opts.Injector = mustInjector(t, seed, cfg)
			opts.FaultBudget = tt
			res, err := RunChaos(sim.Config{N: n, T: tt}, procs, inputs, adversary.None{}, seed, opts)
			if err != nil {
				if !errors.Is(err, ErrFaultBudget) && !errors.Is(err, sim.ErrMaxRounds) {
					t.Fatalf("%s seed=%d: untyped error %v", name, seed, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("%s seed=%d: degraded run must return a partial result", name, seed)
				}
				degraded++
			} else {
				if res.Partial {
					t.Fatalf("%s seed=%d: clean run marked partial", name, seed)
				}
				if !res.Agreement || !res.Validity {
					t.Fatalf("%s seed=%d: agreement=%v validity=%v faults=%+v",
						name, seed, res.Agreement, res.Validity, res.Faults)
				}
				completed++
			}
			if res.Faults.CrashEquivalent() > tt {
				t.Fatalf("%s seed=%d: budget overrun: %+v", name, seed, res.Faults)
			}
			// Even partial results must never contain two different
			// decided values among the survivors (fail-stop preserved).
			seen := -1
			for i, ok := range res.Decided {
				if !ok {
					continue
				}
				if seen == -1 {
					seen = res.Decisions[i]
				} else if seen != res.Decisions[i] {
					t.Fatalf("%s seed=%d: conflicting decisions in %+v", name, seed, res.Decisions)
				}
			}
		}
		t.Logf("%s: %d completed, %d degraded gracefully", name, completed, degraded)
	}
}

func TestChaosMaxRoundsReturnsPartialResult(t *testing.T) {
	procs := []sim.Process{neverDecide{}, neverDecide{}, neverDecide{}}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, 1, chaos.Config{Drop: 0.2})
	opts.FaultBudget = 3
	res, err := RunChaos(sim.Config{N: 3, T: 0, MaxRounds: 6}, procs, []int{0, 0, 0},
		adversary.None{}, 1, opts)
	if !errors.Is(err, sim.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want non-nil partial", res)
	}
}

func TestDelayedMessagesDiscardedAndCounted(t *testing.T) {
	// Delay faults must surface as omissions within the round (demotion if
	// unrecoverable) and be tallied in Faults.Delayed when the stale copy
	// would have arrived — never delivered into a later round.
	const n = 5
	inputs := halfInputs(n)
	procs, err := floodset.NewProcs(n, 2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDeadlines()
	opts.Injector = mustInjector(t, 6, chaos.Config{
		PerLink:   map[chaos.Link]chaos.Rates{{From: 1, To: 3}: {Delay: 1}},
		MaxDelay:  2,
		FromRound: 1, UntilRound: 1,
	})
	opts.FaultBudget = 1
	res, err := RunChaos(sim.Config{N: n, T: 2}, procs, inputs, adversary.None{}, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Delayed == 0 {
		t.Fatalf("faults %+v, want delayed copies counted", res.Faults)
	}
	if res.Faults.Demoted != 1 {
		t.Fatalf("faults %+v, want the delaying sender demoted (omission within its round)", res.Faults)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v", res.Agreement, res.Validity)
	}
}
