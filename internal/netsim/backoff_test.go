package netsim

import (
	"testing"
	"time"

	"synran/internal/adversary"
	"synran/internal/chaos"
	"synran/internal/metrics"
	"synran/internal/protocol/floodset"
	"synran/internal/sim"
)

func TestBackoffWaitClamped(t *testing.T) {
	// Regression: the pre-clamp code computed Backoff << (misses-1)
	// directly, so misses = 64 flipped the sign and misses > 64 shifted
	// to zero — and timer.Reset with a non-positive wait fires
	// immediately, turning exponential backoff into a busy spin.
	const backoff = 10 * time.Millisecond
	cap := backoff << maxBackoffShift
	prev := time.Duration(0)
	for misses := 1; misses <= 200; misses++ {
		w := backoffWait(backoff, misses)
		if w <= 0 {
			t.Fatalf("backoffWait(%v, %d) = %v, want > 0", backoff, misses, w)
		}
		if w < prev {
			t.Fatalf("backoffWait not monotone at misses=%d: %v < %v", misses, w, prev)
		}
		if w > cap {
			t.Fatalf("backoffWait(%v, %d) = %v exceeds the cap %v", backoff, misses, w, cap)
		}
		prev = w
	}
	if got := backoffWait(backoff, 1); got != backoff {
		t.Fatalf("first re-poll wait = %v, want %v", got, backoff)
	}
	if got := backoffWait(backoff, 1000); got != cap {
		t.Fatalf("deep-miss wait = %v, want the cap %v", got, cap)
	}
}

func TestManyDeadlineMissesNoBusySpin(t *testing.T) {
	// End-to-end regression for the overflow: a hung process under
	// DeadlineMisses = 70 must walk all 70 windows (every one with a
	// positive wait, per TestBackoffWaitClamped) and then be demoted,
	// with the miss/re-poll accounting visible in the metrics.
	const n = 4
	inputs := halfInputs(n)
	procs, err := floodset.NewProcs(n, 1, inputs)
	if err != nil {
		t.Fatal(err)
	}
	eng := metrics.NewEngine(metrics.New(1))
	opts := Options{
		RoundDeadline:  2 * time.Millisecond,
		Backoff:        20 * time.Microsecond,
		DeadlineMisses: 70,
		FaultBudget:    1,
		Injector:       mustInjector(t, 11, chaos.Config{PerProc: map[int]chaos.ProcRates{0: {Hang: 1}}}),
	}
	res, err := RunChaos(sim.Config{N: n, T: 1, Metrics: eng}, procs, inputs, adversary.None{}, 11, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Demoted != 1 {
		t.Fatalf("faults %+v, want exactly one demotion", res.Faults)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v after deep-miss demotion", res.Agreement, res.Validity)
	}
	if got := eng.DeadlineMisses.Value(); got != 70 {
		t.Fatalf("deadline_misses = %d, want 70", got)
	}
	if got := eng.BackoffRepolls.Value(); got != 69 {
		t.Fatalf("backoff_repolls = %d, want 69", got)
	}
	if got := eng.Demotions.Value(); got != uint64(res.Faults.Demoted) {
		t.Fatalf("proc_demotions = %d, want %d", got, res.Faults.Demoted)
	}
}
