package workload

import (
	"testing"

	"synran/internal/rng"
)

func TestUniform(t *testing.T) {
	for _, v := range []int{0, 1} {
		in := Uniform(5, v)
		for i, x := range in {
			if x != v {
				t.Fatalf("Uniform(5,%d)[%d] = %d", v, i, x)
			}
		}
	}
}

func TestHalfHalf(t *testing.T) {
	in := HalfHalf(6)
	ones := 0
	for _, x := range in {
		ones += x
	}
	if ones != 3 {
		t.Fatalf("HalfHalf(6) has %d ones, want 3", ones)
	}
}

func TestRandomBias(t *testing.T) {
	in := Random(10000, 0.25, rng.New(1))
	ones := 0
	for _, x := range in {
		ones += x
	}
	frac := float64(ones) / 10000
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Random(p=0.25) produced fraction %v", frac)
	}
}

func TestChain(t *testing.T) {
	ch := Chain(4)
	if len(ch) != 5 {
		t.Fatalf("Chain(4) length %d, want 5", len(ch))
	}
	for j, v := range ch {
		ones := 0
		for _, x := range v {
			ones += x
		}
		if ones != j {
			t.Fatalf("chain[%d] has %d ones", j, ones)
		}
	}
	// Adjacent vectors differ in exactly one position.
	for j := 1; j < len(ch); j++ {
		diff := 0
		for i := range ch[j] {
			if ch[j][i] != ch[j-1][i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("chain step %d differs in %d positions", j, diff)
		}
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"zeros", "ones", "half", "random"} {
		in, err := Named(name, 8, 1)
		if err != nil || len(in) != 8 {
			t.Fatalf("Named(%q): %v len=%d", name, err, len(in))
		}
	}
	if _, err := Named("bogus", 8, 1); err == nil {
		t.Fatal("unknown workload must error")
	}
}
