// Package workload generates the initial input vectors the experiments
// run consensus on, including the adjacent-vector chain of Lemma 3.5
// (the paper's initial-state argument walks a chain of input vectors
// from all-0 to all-1 that differ in one position).
package workload

import (
	"fmt"

	"synran/internal/rng"
)

// Uniform returns n copies of bit v.
func Uniform(n, v int) []int {
	in := make([]int, n)
	if v != 0 {
		for i := range in {
			in[i] = 1
		}
	}
	return in
}

// HalfHalf returns an alternating 0/1 vector (the maximally split start).
func HalfHalf(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i % 2
	}
	return in
}

// Random returns independent Bernoulli(p) inputs.
func Random(n int, p float64, r *rng.Stream) []int {
	in := make([]int, n)
	for i := range in {
		if r.Float64() < p {
			in[i] = 1
		}
	}
	return in
}

// Chain returns the Lemma 3.5 chain of n+1 input vectors: vector j has
// ones in positions 0..j-1. Adjacent vectors differ in exactly one input.
func Chain(n int) [][]int {
	out := make([][]int, n+1)
	for j := 0; j <= n; j++ {
		v := make([]int, n)
		for i := 0; i < j; i++ {
			v[i] = 1
		}
		out[j] = v
	}
	return out
}

// Named resolves a workload by name; the CLI tools use it.
func Named(name string, n int, seed uint64) ([]int, error) {
	switch name {
	case "zeros":
		return Uniform(n, 0), nil
	case "ones":
		return Uniform(n, 1), nil
	case "half":
		return HalfHalf(n), nil
	case "random":
		return Random(n, 0.5, rng.New(seed)), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (want zeros|ones|half|random)", name)
	}
}
