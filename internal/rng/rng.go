// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized component in this repository.
//
// The generator is a hand-rolled xoshiro256** seeded through SplitMix64.
// We deliberately do not use math/rand: its default source changed across
// Go releases, and reproducibility of experiments from a single published
// seed — on any platform, with any Go version — is a hard requirement for
// this project. Streams can be split hierarchically (one stream per
// process per experiment trial) so that concurrent components never share
// generator state.
package rng

import "math/bits"

// Stream is a deterministic pseudo-random number stream. It is not safe
// for concurrent use; split one child stream per goroutine instead.
type Stream struct {
	s [4]uint64
}

// New returns a stream seeded from seed via SplitMix64, following the
// initialization recommended by the xoshiro authors.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		sm, st.s[i] = splitMix64(sm)
	}
	// A xoshiro state of all zeros is invalid (the generator would emit
	// only zeros); SplitMix64 cannot produce it from any seed, but guard
	// anyway so the invariant is local.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Reseed reinitializes the stream in place from seed, exactly as New
// would, without allocating. Arena-backed snapshots (sim.CloneInto /
// Execution.Reset) use it to recycle stream storage across rollouts.
func (r *Stream) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// CopyFrom overwrites the stream's state with src's, making the two
// streams produce identical future outputs. It is the allocation-free
// counterpart of Clone, used by the arena snapshot path.
func (r *Stream) CopyFrom(src *Stream) {
	r.s = src.s
}

// Split derives an independent child stream identified by key. Children
// with distinct keys, and the parent, produce statistically independent
// sequences; splitting does not advance the parent.
func (r *Stream) Split(key uint64) *Stream {
	// Mix the parent state with the key through SplitMix64 so that child
	// streams are decorrelated from the parent and from each other.
	h := key ^ 0xd1b54a32d192ed03
	var st Stream
	for i := range st.s {
		var v uint64
		h, v = splitMix64(h ^ r.s[i])
		st.s[i] = v
	}
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// SplitSeed returns Split(key).Uint64() without allocating the child
// stream. The xoshiro output function reads only s[1], so deriving the
// child's first word needs just the first two SplitMix64 steps of the
// child-state construction; the all-zero guard in Split touches s[0]
// only and cannot change this value. Hot reseeding paths
// (sim.Execution.ReseedProcesses) use it to derive one per-process seed
// per rollout allocation-free. TestSplitSeedMatchesSplit pins the
// equivalence.
func (r *Stream) SplitSeed(key uint64) uint64 {
	h := key ^ 0xd1b54a32d192ed03
	h, _ = splitMix64(h ^ r.s[0])
	_, s1 := splitMix64(h ^ r.s[1])
	return bits.RotateLeft64(s1*5, 7) * 9
}

// Uint64At returns New(seed).Uint64() without allocating the stream:
// the xoshiro output function reads only s[1], so two SplitMix64 steps
// of the New initialization suffice (the all-zero guard touches s[0]
// only). Hot paths that derive one value per seed — the shared-coin
// protocol option, per-rollout reseeding in internal/valency — use it
// in place of a throwaway stream. TestUint64AtMatchesNew pins the
// equivalence.
func Uint64At(seed uint64) uint64 {
	sm, _ := splitMix64(seed)
	_, s1 := splitMix64(sm)
	return bits.RotateLeft64(s1*5, 7) * 9
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// nearly-divisionless method.
func (r *Stream) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns a fair random boolean.
func (r *Stream) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bit returns a fair random bit, 0 or 1.
func (r *Stream) Bit() int {
	return int(r.Uint64() & 1)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random in place (Fisher–Yates).
func (r *Stream) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Clone returns an exact copy of the stream's current state. The clone
// and the original produce identical sequences from this point on; this
// is what execution snapshots use so that a look-ahead rollout and the
// real execution see the same coin flips.
func (r *Stream) Clone() *Stream {
	c := *r
	return &c
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}
