package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)

	// Same key twice from an unadvanced parent gives the same stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatalf("Split(1) not deterministic at step %d", i)
		}
	}
	// Different keys give different streams.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams agreed on %d/100 outputs", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(99)
	b := New(99)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split advanced the parent stream (step %d)", i)
		}
	}
}

// TestSplitPrefixesNeverCollide is the property the parallel trial
// harness leans on: distinct trial keys must yield streams whose first
// k outputs differ pairwise, or two trials would share randomness. We
// fingerprint the k-output prefix of every child and require all
// fingerprints (and the raw first outputs) to be distinct across a
// large key sample, including adversarial key patterns (sequential,
// strided by the harness's 7919 prime, high-bit, bit-flipped parent
// seed).
func TestSplitPrefixesNeverCollide(t *testing.T) {
	const k = 8
	const keysPerPattern = 2000
	patterns := []struct {
		name string
		key  func(i int) uint64
	}{
		{"sequential", func(i int) uint64 { return uint64(i) }},
		{"strided-7919", func(i int) uint64 { return uint64(i) * 7919 }},
		{"high-bit", func(i int) uint64 { return uint64(i) | 1<<63 }},
		{"parent-xor", func(i int) uint64 { return uint64(i) ^ 0x9e3779b97f4a7c15 }},
	}
	for _, pat := range patterns {
		parent := New(42)
		prefixes := make(map[[k]uint64]uint64, keysPerPattern)
		firsts := make(map[uint64]uint64, keysPerPattern)
		for i := 0; i < keysPerPattern; i++ {
			key := pat.key(i)
			c := parent.Split(key)
			var p [k]uint64
			for j := range p {
				p[j] = c.Uint64()
			}
			if prev, dup := prefixes[p]; dup {
				t.Fatalf("%s: keys %d and %d produced identical %d-output prefixes", pat.name, prev, key, k)
			}
			prefixes[p] = key
			if prev, dup := firsts[p[0]]; dup {
				t.Fatalf("%s: keys %d and %d agree on their first output", pat.name, prev, key)
			}
			firsts[p[0]] = key
		}
	}
}

// TestSplitIsPureQuick is the property form of
// TestSplitDoesNotAdvanceParent: for any (seed, key) pair, Split leaves
// the parent's future outputs untouched and is reproducible.
func TestSplitIsPureQuick(t *testing.T) {
	f := func(seed, key uint64) bool {
		a, b := New(seed), New(seed)
		c1 := a.Split(key)
		c2 := a.Split(key)
		for i := 0; i < 8; i++ {
			if c1.Uint64() != c2.Uint64() {
				return false
			}
		}
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSplitChildDiffersFromParentStream guards against a Split that
// simply hands back the parent's own sequence under another name.
func TestSplitChildDiffersFromParentStream(t *testing.T) {
	for _, key := range []uint64{0, 1, 42, 1 << 40} {
		parent := New(9)
		child := parent.Split(key)
		same := 0
		for i := 0; i < 100; i++ {
			if parent.Uint64() == child.Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("Split(%d) tracked the parent stream on %d/100 outputs", key, same)
		}
	}
}

func TestCloneReplays(t *testing.T) {
	a := New(3)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	c := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const trials = 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBitFairness(t *testing.T) {
	r := New(123)
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		ones += r.Bit()
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bit() fraction of ones = %v, want ~0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformity(t *testing.T) {
	// Chi-squared sanity test on permutations of 3 elements: 6 outcomes.
	r := New(77)
	counts := make(map[[3]int]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(trials) / 6
	for perm, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("permutation %v count %d deviates from %v", perm, c, want)
		}
	}
}

func TestIntnUniformQuick(t *testing.T) {
	r := New(13)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSeed(t *testing.T) {
	r := New(0)
	// Must not be the degenerate all-zero xoshiro state.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func TestBoolFairness(t *testing.T) {
	r := New(55)
	trues := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / trials
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool() fraction = %v, want ~0.5", frac)
	}
}

func TestIntnSmallBoundsUnbiased(t *testing.T) {
	// Exercises the rejection path in boundedUint64 (n=3 has a nonzero
	// threshold) and checks uniformity.
	r := New(66)
	counts := [3]int{}
	const trials = 90000
	for i := 0; i < trials; i++ {
		counts[r.Intn(3)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-trials/3.0) > 0.05*trials/3.0 {
			t.Fatalf("Intn(3) value %d count %d deviates from uniform", v, c)
		}
	}
}
