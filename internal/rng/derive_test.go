package rng

import "testing"

// TestSplitSeedMatchesSplit pins the allocation-free seed derivation:
// SplitSeed(key) must equal Split(key).Uint64() for every (state, key)
// pair, including streams that have advanced and the degenerate keys
// the shortcut's dropped SplitMix64 steps could get wrong.
func TestSplitSeedMatchesSplit(t *testing.T) {
	keys := []uint64{0, 1, 42, ^uint64(0), 0xd1b54a32d192ed03, 1 << 63}
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef, ^uint64(0)} {
		r := New(seed)
		for step := 0; step < 5; step++ {
			for _, key := range keys {
				if got, want := r.SplitSeed(key), r.Split(key).Uint64(); got != want {
					t.Fatalf("seed=%#x step=%d key=%#x: SplitSeed=%#x, Split().Uint64()=%#x",
						seed, step, key, got, want)
				}
			}
			r.Uint64() // advance the parent; the equivalence must hold at every state
		}
	}
	r := New(3)
	if n := testing.AllocsPerRun(100, func() { _ = r.SplitSeed(9) }); n != 0 {
		t.Fatalf("SplitSeed allocates %.1f times per call, want 0", n)
	}
}

// TestUint64AtMatchesNew pins the other derivation shortcut:
// Uint64At(seed) must equal New(seed).Uint64() for arbitrary seeds,
// including 0 (New's all-zero guard touches s[0] only, so the shortcut
// may skip it — this test is the proof that stays true).
func TestUint64AtMatchesNew(t *testing.T) {
	seeds := []uint64{0, 1, 2, 42, 0x9e3779b97f4a7c15, ^uint64(0), 1 << 32, 0xcafebabe}
	for _, seed := range seeds {
		if got, want := Uint64At(seed), New(seed).Uint64(); got != want {
			t.Fatalf("seed=%#x: Uint64At=%#x, New().Uint64()=%#x", seed, got, want)
		}
	}
	s := New(11)
	for i := 0; i < 1000; i++ {
		seed := s.Uint64()
		if got, want := Uint64At(seed), New(seed).Uint64(); got != want {
			t.Fatalf("random seed %#x: Uint64At=%#x, want %#x", seed, got, want)
		}
	}
}
