// Command consensus-sim runs consensus executions and prints outcomes:
// a single run (optionally traced and digested) or a multi-trial summary.
//
// Usage:
//
//	consensus-sim -n 101 -t 100 -protocol synran -adversary splitvote \
//	    -workload half -seed 42 -trace
//	consensus-sim -n 256 -adversary splitvote -trials 50 -metrics
//	consensus-sim -scenario testdata/corpus/synran-clean.scenario
//	consensus-sim -scenario-dir testdata/corpus
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.SimOptions
	common := cli.CommonFlags{Seed: 1}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagEngine|cli.FlagDeadline|cli.FlagMetrics|cli.FlagScenario|cli.FlagCheckpoint)
	flag.IntVar(&opts.N, "n", 64, "number of processes")
	flag.IntVar(&opts.T, "t", -1, "crash budget (default n-1)")
	flag.StringVar(&opts.Protocol, "protocol", "synran", "protocol: synran|benor|floodset|leadercoin|earlystop|phaseking")
	flag.StringVar(&opts.Adversary, "adversary", "splitvote", "adversary: none|random|splitvote|masscrash|push0|push1|waves|leaderkiller|equivocator|lowerbound|stepwise")
	flag.StringVar(&opts.Workload, "workload", "half", "inputs: zeros|ones|half|random")
	flag.IntVar(&opts.Trials, "trials", 1, "number of runs (seed, seed+1, ...)")
	flag.BoolVar(&opts.Trace, "trace", false, "print a per-round trace (single trial only)")
	flag.BoolVar(&opts.Digest, "digest", false, "print the execution digest (single trial only)")
	flag.StringVar(&opts.TraceFile, "tracefile", "", "write a JSON event trace to this file (single trial only)")
	flag.BoolVar(&opts.Live, "live", false, "use the goroutine-per-process runner")
	flag.StringVar(&opts.Chaos, "chaos", "", "chaos fault schedule on the hardened live runner (e.g. drop=0.05,dup=0.02,stall=0.01,maxstall=5ms)")
	flag.IntVar(&opts.FaultBudget, "faultbudget", 0, "crash-equivalent chaos faults to absorb (keep adversary crashes + budget <= t)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()
	errw := cli.NewSyncWriter(os.Stderr)
	if err := common.Validate(); err != nil {
		fmt.Fprintln(errw, "consensus-sim:", err)
		os.Exit(2)
	}
	opts.Seed, opts.Workers, opts.Engine = common.Seed, common.Workers, common.Engine
	opts.Metrics = common.NewMetricsEngine()
	opts.Durable = common.Durable()
	if *pprofAddr != "" {
		addr, stopPprof, err := cli.StartPprof(*pprofAddr, opts.Metrics.Registry())
		if err != nil {
			fmt.Fprintln(errw, "consensus-sim:", err)
			os.Exit(2)
		}
		defer stopPprof()
		fmt.Fprintf(errw, "pprof: http://%s/debug/pprof/ (expvar at /debug/vars)\n", addr)
	}
	stop := cli.StartWatchdog(common.Deadline, errw, os.Exit, common.FlushCheckpoints)
	defer stop()

	var runErr error
	if common.ScenarioMode() {
		runErr = cli.RunScenarios(&common, opts.Metrics, os.Stdout)
	} else {
		runErr = cli.ConsensusSim(opts, os.Stdout)
	}
	if err := common.WriteMetrics(opts.Metrics, os.Stdout); err != nil {
		fmt.Fprintln(errw, "consensus-sim:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(errw, "consensus-sim:", runErr)
		os.Exit(1)
	}
}
