// Command asyncsim runs the asynchronous Ben-Or protocol (the model the
// paper's Section 1.2 contrasts with) under a chosen scheduler and
// prints the outcome, phases, and coin-flip counts — or demonstrates the
// FLP loop with the deterministic parity coin.
//
// Usage:
//
//	asyncsim -n 7 -t 3 -scheduler splitter -trials 20
//	asyncsim -n 4 -t 1 -coin parity -scheduler splitter   # FLP loop
//	asyncsim -scenario testdata/corpus/async-splitter.scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.AsyncOptions
	common := cli.CommonFlags{Seed: 1}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagDeadline|cli.FlagMetrics|cli.FlagScenario|cli.FlagCheckpoint)
	flag.IntVar(&opts.N, "n", 7, "number of processes")
	flag.IntVar(&opts.T, "t", -1, "crash budget (default (n-1)/2; Ben-Or needs t < n/2)")
	flag.StringVar(&opts.Scheduler, "scheduler", "fifo", "scheduler: fifo|random|splitter|syncround")
	flag.StringVar(&opts.Coin, "coin", "random", "coin: random|parity (parity = deterministic, FLP)")
	flag.StringVar(&opts.Workload, "workload", "half", "inputs: zeros|ones|half|random")
	flag.IntVar(&opts.Trials, "trials", 1, "number of runs")
	flag.IntVar(&opts.MaxSteps, "maxsteps", 0, "delivery cap (0 = default)")
	flag.Parse()
	errw := cli.NewSyncWriter(os.Stderr)
	if err := common.Validate(); err != nil {
		fmt.Fprintln(errw, "asyncsim:", err)
		os.Exit(2)
	}
	opts.Seed, opts.Workers = common.Seed, common.Workers
	opts.Metrics = common.NewMetricsEngine()
	opts.Durable = common.Durable()
	stop := cli.StartWatchdog(common.Deadline, errw, os.Exit, common.FlushCheckpoints)
	defer stop()

	var runErr error
	if common.ScenarioMode() {
		runErr = cli.RunScenarios(&common, opts.Metrics, os.Stdout)
	} else {
		runErr = cli.AsyncSim(opts, os.Stdout)
	}
	if err := common.WriteMetrics(opts.Metrics, os.Stdout); err != nil {
		fmt.Fprintln(errw, "asyncsim:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(errw, "asyncsim:", runErr)
		os.Exit(1)
	}
}
