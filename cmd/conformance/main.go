// Command conformance runs the cross-engine differential harness: every
// case executes on the sequential engine, the zero-chaos live runner,
// the buffer-reusing Reset path, and the snapshot/clone forks, and the
// lanes' event logs, results, and metrics reports must agree field by
// field while the invariant oracles (agreement, validity, crash budget,
// wire encoding, metrics cross-checks) hold on every lane.
//
// Usage:
//
//	conformance -quick -seed 42
//	conformance -one "protocol=floodset,adversary=waves,workload=half,n=5,t=2,seed=3"
//	conformance -scenario-dir testdata/corpus
//	conformance -scenario testdata/corpus/benor-unsafe.scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.ConformanceOptions
	common := cli.CommonFlags{Seed: 42}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagQuick|cli.FlagEngine|cli.FlagDeadline|cli.FlagMetrics|cli.FlagScenario|cli.FlagCheckpoint)
	flag.StringVar(&opts.One, "one", "", "check a single case spec (as printed in a divergence repro) instead of the grid")
	flag.IntVar(&opts.Seeds, "seeds", 1, "seeds per grid point")
	flag.IntVar(&opts.MaxRounds, "maxrounds", 0, "per-lane round cap (0 = harness default)")
	flag.Parse()
	errw := cli.NewSyncWriter(os.Stderr)
	if err := common.Validate(); err != nil {
		fmt.Fprintln(errw, "conformance:", err)
		os.Exit(2)
	}
	if opts.Seeds < 1 {
		fmt.Fprintln(errw, "conformance: -seeds must be >= 1")
		os.Exit(2)
	}
	opts.Quick, opts.Seed, opts.Workers, opts.Engine = common.Quick, common.Seed, common.Workers, common.Engine
	opts.Scenario, opts.ScenarioDir = common.Scenario, common.ScenarioDir
	opts.Metrics = common.NewMetricsEngine()
	opts.Durable = common.Durable()
	stop := cli.StartWatchdog(common.Deadline, errw, os.Exit, common.FlushCheckpoints)
	defer stop()

	runErr := cli.Conformance(opts, os.Stdout)
	if err := common.WriteMetrics(opts.Metrics, os.Stdout); err != nil {
		fmt.Fprintln(errw, "conformance:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(errw, "conformance:", runErr)
		os.Exit(1)
	}
}
