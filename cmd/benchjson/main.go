// Command benchjson converts `go test -bench` text output (stdin) into
// the JSON benchmark artifact, and optionally gates on an allocation
// baseline — the tool behind `make bench-json` and the CI bench smoke
// job.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_sim.json
//	go test -bench=ValencyEstimate -benchtime=1x -benchmem . | \
//	    benchjson -out /tmp/cur.json -baseline BENCH_sim.json \
//	    -check BenchmarkValencyEstimate/arena -tolerance 0.20
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/benchfmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_sim.json", "output JSON file (- for stdout)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (optional)")
		check     = flag.String("check", "", "benchmark name whose allocs/op is gated against the baseline")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional allocs/op regression (0.20 = +20%)")
	)
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *out == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
	}

	if *check != "" {
		if *baseline == "" {
			return fmt.Errorf("-check requires -baseline")
		}
		bf, err := os.Open(*baseline)
		if err != nil {
			return err
		}
		defer bf.Close()
		base, err := benchfmt.ReadJSON(bf)
		if err != nil {
			return err
		}
		if err := benchfmt.CheckAllocs(base, rep, *check, *tolerance); err != nil {
			return err
		}
		cur := rep.Find(*check)
		fmt.Fprintf(os.Stderr, "benchjson: %s ok at %.0f allocs/op (baseline %.0f, tolerance +%.0f%%)\n",
			*check, cur.AllocsPerOp, base.Find(*check).AllocsPerOp, *tolerance*100)
	}
	return nil
}
