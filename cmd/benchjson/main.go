// Command benchjson converts `go test -bench` text output (stdin) into
// the JSON benchmark artifact, and optionally gates on an allocation
// baseline — the tool behind `make bench-json` and the CI bench smoke
// job.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_sim.json
//	go test -bench=ValencyEstimate -benchtime=1x -benchmem . | \
//	    benchjson -out /tmp/cur.json -baseline BENCH_sim.json \
//	    -check BenchmarkValencyEstimate/arena -tolerance 0.20
//
// -check takes a comma-separated list; each entry is a benchmark name,
// optionally with its own tolerance as name=fraction (entries without
// one use -tolerance):
//
//	-check 'BenchmarkValencyEstimate/arena=0.20,BenchmarkMetricsOverhead/off=0.02'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"synran/internal/benchfmt"
	"synran/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_sim.json", "output JSON file (- for stdout)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (optional)")
		check     = flag.String("check", "", "comma-separated benchmark names whose allocs/op are gated against the baseline (name or name=tolerance)")
		tolerance = flag.Float64("tolerance", 0.20, "default allowed fractional allocs/op regression (0.20 = +20%)")
	)
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *out == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		// Atomic, so an interrupted run never tears the artifact CI diffs
		// against its baseline.
		if err := cli.AtomicWriteFile(*out, rep.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
	}

	if *check != "" {
		if *baseline == "" {
			return fmt.Errorf("-check requires -baseline")
		}
		bf, err := os.Open(*baseline)
		if err != nil {
			return err
		}
		defer bf.Close()
		base, err := benchfmt.ReadJSON(bf)
		if err != nil {
			return err
		}
		for _, item := range strings.Split(*check, ",") {
			name, tol := strings.TrimSpace(item), *tolerance
			if eq := strings.IndexByte(name, '='); eq >= 0 {
				tol, err = strconv.ParseFloat(name[eq+1:], 64)
				if err != nil {
					return fmt.Errorf("bad -check entry %q: %w", item, err)
				}
				name = name[:eq]
			}
			if err := benchfmt.CheckAllocs(base, rep, name, tol); err != nil {
				return err
			}
			cur := rep.Find(name)
			fmt.Fprintf(os.Stderr, "benchjson: %s ok at %.0f allocs/op (baseline %.0f, tolerance +%.0f%%)\n",
				name, cur.AllocsPerOp, base.Find(name).AllocsPerOp, tol*100)
		}
	}
	return nil
}
