// Command lowerbound demonstrates the paper's Section 3 construction
// end to end at small n: it finds a bivalent (or null-valent) initial
// state via the Lemma 3.5 chain argument, then lets the valency-guided
// adversary keep the execution undecided, printing the round-by-round
// classifications.
//
// Usage:
//
//	lowerbound -n 10 -seed 7
//	lowerbound -n 8 -metrics         # count rollouts and rounds
//	lowerbound -scenario testdata/corpus/synran-lowerbound.scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
	"synran/internal/core"
	"synran/internal/sim"
	"synran/internal/valency"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run() error {
	common := cli.CommonFlags{Seed: 7}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagDeadline|cli.FlagMetrics|cli.FlagScenario|cli.FlagCheckpoint)
	var (
		n        = flag.Int("n", 10, "number of processes (look-ahead is exponential-ish; keep small)")
		rollouts = flag.Int("rollouts", 16, "Monte-Carlo rollouts per pool adversary")
		stepwise = flag.Bool("stepwise", false, "use the faithful Section 3.4 message-by-message strategy")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	stop := cli.StartWatchdog(common.Deadline, cli.NewSyncWriter(os.Stderr), os.Exit, common.FlushCheckpoints)
	defer stop()
	if common.ScenarioMode() {
		// Scenario files run through the shared dispatch (a lowerbound
		// scenario is a synchronous one with the valency adversary); the
		// round-by-round narration below is the flag surface's extra.
		m := common.NewMetricsEngine()
		if err := cli.RunScenarios(&common, m, os.Stdout); err != nil {
			return err
		}
		return common.WriteMetrics(m, os.Stdout)
	}
	seed, workers := &common.Seed, &common.Workers
	t := *n - 1
	m := common.NewMetricsEngine()

	est := valency.NewEstimator(*n, *seed)
	est.RolloutsPerAdversary = *rollouts
	est.Workers = *workers
	est.Metrics = m

	fmt.Printf("searching the Lemma 3.5 input chain for a non-univalent initial state (n=%d, t=%d)...\n", *n, t)
	factory := func(inputs []int, s uint64) ([]sim.Process, error) {
		return core.NewProcs(*n, inputs, s, core.Options{})
	}
	st, err := valency.FindInitialState(*n, t, factory, est, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("initial state: inputs=%v class=%v (min=%.2f max=%.2f)", st.Inputs, st.Class,
		st.Estimate.MinP, st.Estimate.MaxP)
	if st.CrashFirst >= 0 {
		fmt.Printf(" + round-1 crash of p%d", st.CrashFirst)
	}
	fmt.Println()

	procs, err := factory(st.Inputs, *seed)
	if err != nil {
		return err
	}
	exec, err := sim.NewExecution(sim.Config{N: *n, T: t, MaxRounds: 100 * *n, Metrics: m}, procs, st.Inputs, *seed)
	if err != nil {
		return err
	}

	var lb sim.Adversary
	if *stepwise {
		sw := valency.NewStepwise(*n, *seed)
		sw.Est.RolloutsPerAdversary = *rollouts
		sw.Est.Workers = *workers
		sw.Est.Metrics = m
		lb = sw
	} else {
		cand := valency.NewLowerBound(*n, *seed)
		cand.Est.RolloutsPerAdversary = *rollouts
		cand.Est.Workers = *workers
		cand.Est.Metrics = m
		lb = cand
	}

	fmt.Println("driving the execution under the valency adversary:")
	for !exec.Done() {
		view, err := exec.StepPhaseA()
		if err != nil {
			return err
		}
		plans := lb.Plan(view)
		if st.CrashFirst >= 0 && view.Round == 1 {
			plans = append([]sim.CrashPlan{{Victim: st.CrashFirst}}, plans...)
		}
		if err := exec.FinishRound(plans); err != nil {
			return err
		}
		est2, err := est.Classify(exec, exec.Round())
		if err != nil {
			return err
		}
		fmt.Printf("  round %3d: crashes this round=%d, budget left=%d, state=%v (min=%.2f max=%.2f)\n",
			exec.Round(), len(plans), exec.Budget(), est2.Class, est2.MinP, est2.MaxP)
	}
	res := exec.Result()
	fmt.Printf("finished after %d rounds, %d crashes, decided %d (agreement=%v validity=%v)\n",
		res.HaltRounds, res.Crashes, res.DecidedValue(), res.Agreement, res.Validity)
	fmt.Printf("theory: Theorem 1 floor is %.2f rounds (vacuous below 1 at this n); the mechanism\n",
		core.LowerBoundRounds(*n, t))
	fmt.Println("is the demonstration: non-univalent states persist while the budget lasts.")
	return common.WriteMetrics(m, os.Stdout)
}
