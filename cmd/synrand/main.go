// Command synrand is the experiment-as-a-service surface: a resident
// trial server plus its load generator.
//
//	synrand serve   -addr localhost:7070 -data ./synrand-data
//	synrand loadgen -clients 8 -jobs 3            (selfhost smoke)
//	synrand loadgen -server http://localhost:7070 (hammer a live server)
//
// The server accepts scenario jobs over HTTP/JSON, schedules their
// trial shards through a priority gate (interactive preempts bulk),
// journals every job and shard so a killed server resumes instead of
// recomputing, and rejects beyond-capacity submissions with typed
// 429s. The loadgen hammers it with mixed-priority clients and asserts
// every merged table is byte-identical to the same scenario run via
// `consensus-sim -trials`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"synran/internal/cli"
	"synran/internal/metrics"
)

func usage(errw *cli.SyncWriter) {
	fmt.Fprintln(errw, "usage: synrand serve|loadgen [flags] (run with -h for per-command flags)")
	os.Exit(2)
}

func main() {
	errw := cli.NewSyncWriter(os.Stderr)
	if len(os.Args) < 2 {
		usage(errw)
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:], errw)
	case "loadgen":
		loadgen(os.Args[2:], errw)
	default:
		usage(errw)
	}
}

func serve(args []string, errw *cli.SyncWriter) {
	fs := flag.NewFlagSet("synrand serve", flag.ExitOnError)
	var cfg cli.ServeConfig
	fs.StringVar(&cfg.Addr, "addr", "localhost:7070", "HTTP listen address (:0 picks a free port)")
	fs.StringVar(&cfg.DataDir, "data", "", "persistence root: job log + shard checkpoints (required; restart resumes)")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent trial shard slots across all jobs (0 = all cores)")
	fs.IntVar(&cfg.QueueLimit, "queue", 0, "max queued+running jobs before typed 429s (0 = default)")
	fs.IntVar(&cfg.ClientLimit, "client-limit", 0, "max in-flight jobs per client before typed 429s (0 = default)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address (empty = off)")
	fs.Parse(args)
	if cfg.DataDir == "" {
		fmt.Fprintln(errw, "synrand serve: -data is required (the server is resident; its state must live somewhere)")
		os.Exit(2)
	}
	cfg.Metrics = metrics.New(1)
	if *pprofAddr != "" {
		addr, stopPprof, err := cli.StartPprof(*pprofAddr, cfg.Metrics)
		if err != nil {
			fmt.Fprintln(errw, "synrand serve:", err)
			os.Exit(2)
		}
		defer stopPprof()
		fmt.Fprintf(errw, "pprof: http://%s/debug/pprof/ (expvar at /debug/vars)\n", addr)
	}
	addr, shutdown, err := cli.StartServer(cfg)
	if err != nil {
		fmt.Fprintln(errw, "synrand serve:", err)
		os.Exit(1)
	}
	fmt.Printf("synrand: serving on http://%s (data %s)\n", addr, cfg.DataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(errw, "synrand: shutting down (journals seal; incomplete jobs resume on restart)")
	if err := shutdown(); err != nil {
		fmt.Fprintln(errw, "synrand serve:", err)
		os.Exit(1)
	}
}

func loadgen(args []string, errw *cli.SyncWriter) {
	fs := flag.NewFlagSet("synrand loadgen", flag.ExitOnError)
	var cfg cli.LoadgenConfig
	fs.StringVar(&cfg.Server, "server", "", "server URL to hammer (empty = boot a selfhost server in-process)")
	fs.StringVar(&cfg.DataDir, "data", "", "selfhost server persistence root (empty = temp dir)")
	fs.IntVar(&cfg.Clients, "clients", 8, "concurrent clients (mixed priorities)")
	fs.IntVar(&cfg.Jobs, "jobs", 3, "jobs per client")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "scenario menu assignment seed")
	fs.IntVar(&cfg.Workers, "workers", 0, "selfhost server shard slots (0 = all cores)")
	fs.IntVar(&cfg.Canary, "canary", 5, "canary submissions (interactive known-answer jobs with latency export)")
	fs.BoolVar(&cfg.SkipRejectionProbe, "skip-probe", false, "skip the queue-full rejection probe (selfhost only)")
	fs.Parse(args)
	if err := cli.Loadgen(cfg, os.Stdout); err != nil {
		fmt.Fprintln(errw, "synrand loadgen:", err)
		os.Exit(1)
	}
}
