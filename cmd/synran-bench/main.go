// Command synran-bench regenerates every experiment table (E1–E15 in
// DESIGN.md) that reproduces the paper's quantitative claims.
//
// Usage:
//
//	synran-bench              # full configuration (minutes)
//	synran-bench -quick       # reduced sizes (seconds)
//	synran-bench -only E3,E4  # a subset
//	synran-bench -csv         # machine-readable output
//	synran-bench -quick -metrics-out metrics.json
//	synran-bench -scenario-dir testdata/corpus   # corpus outcome table
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.BenchOptions
	common := cli.CommonFlags{Seed: 42}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagQuick|cli.FlagDeadline|cli.FlagMetrics|cli.FlagScenario|cli.FlagCheckpoint)
	flag.StringVar(&opts.Only, "only", "", "comma-separated experiment ids (e.g. E3,E7)")
	flag.BoolVar(&opts.CSV, "csv", false, "emit CSV instead of aligned tables")
	flag.BoolVar(&opts.Markdown, "markdown", false, "emit GitHub-flavored markdown tables")
	flag.Parse()
	errw := cli.NewSyncWriter(os.Stderr)
	if err := common.Validate(); err != nil {
		fmt.Fprintln(errw, "synran-bench:", err)
		os.Exit(2)
	}
	opts.Seed, opts.Workers, opts.Quick = common.Seed, common.Workers, common.Quick
	opts.Scenario, opts.ScenarioDir = common.Scenario, common.ScenarioDir
	opts.Metrics = common.NewMetricsEngine()
	opts.Durable = common.Durable()
	stop := cli.StartWatchdog(common.Deadline, errw, os.Exit, common.FlushCheckpoints)
	defer stop()

	runErr := cli.Bench(opts, os.Stdout, errw)
	if err := common.WriteMetrics(opts.Metrics, os.Stdout); err != nil {
		fmt.Fprintln(errw, "synran-bench:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(errw, "synran-bench:", runErr)
		os.Exit(1)
	}
}
