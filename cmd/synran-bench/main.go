// Command synran-bench regenerates every experiment table (E1–E15 in
// DESIGN.md) that reproduces the paper's quantitative claims.
//
// Usage:
//
//	synran-bench              # full configuration (minutes)
//	synran-bench -quick       # reduced sizes (seconds)
//	synran-bench -only E3,E4  # a subset
//	synran-bench -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.BenchOptions
	common := cli.CommonFlags{Seed: 42}
	common.Register(flag.CommandLine, cli.FlagSeed|cli.FlagWorkers|cli.FlagQuick|cli.FlagDeadline)
	flag.StringVar(&opts.Only, "only", "", "comma-separated experiment ids (e.g. E3,E7)")
	flag.BoolVar(&opts.CSV, "csv", false, "emit CSV instead of aligned tables")
	flag.BoolVar(&opts.Markdown, "markdown", false, "emit GitHub-flavored markdown tables")
	flag.Parse()
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "synran-bench:", err)
		os.Exit(2)
	}
	opts.Seed, opts.Workers, opts.Quick = common.Seed, common.Workers, common.Quick
	stop := cli.StartWatchdog(common.Deadline, os.Stderr, os.Exit)
	defer stop()

	if err := cli.Bench(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "synran-bench:", err)
		os.Exit(1)
	}
}
