// Command synran-bench regenerates every experiment table (E1–E15 in
// DESIGN.md) that reproduces the paper's quantitative claims.
//
// Usage:
//
//	synran-bench              # full configuration (minutes)
//	synran-bench -quick       # reduced sizes (seconds)
//	synran-bench -only E3,E4  # a subset
//	synran-bench -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"synran/internal/cli"
)

func main() {
	var opts cli.BenchOptions
	flag.BoolVar(&opts.Quick, "quick", false, "reduced sizes and trial counts")
	flag.Uint64Var(&opts.Seed, "seed", 42, "random seed (tables are reproducible)")
	flag.StringVar(&opts.Only, "only", "", "comma-separated experiment ids (e.g. E3,E7)")
	flag.BoolVar(&opts.CSV, "csv", false, "emit CSV instead of aligned tables")
	flag.BoolVar(&opts.Markdown, "markdown", false, "emit GitHub-flavored markdown tables")
	flag.IntVar(&opts.Workers, "workers", 0, "trial worker pool size (0 = all cores; tables are identical at any count)")
	flag.Parse()

	if err := cli.Bench(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "synran-bench:", err)
		os.Exit(1)
	}
}
