module synran

go 1.22
