// Quickstart: run the SynRan protocol on 64 processes with a random
// crash adversary and print the outcome.
package main

import (
	"fmt"
	"os"

	"synran"
)

func main() {
	const n = 64
	res, err := synran.Run(synran.Spec{
		N:         n,
		T:         n / 2,
		Inputs:    synran.HalfHalfInputs(n),
		Protocol:  synran.ProtocolSynRan,
		Adversary: synran.AdversaryRandom,
		Seed:      2024,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("consensus reached on %d after %d rounds (%d of %d processes crashed)\n",
		res.DecidedValue(), res.HaltRounds, res.Crashes, n)
	fmt.Printf("agreement=%v validity=%v\n", res.Agreement, res.Validity)
	fmt.Printf("paper's expected-rounds shape for this (n, t): %.2f\n",
		synran.UpperBoundRounds(n, n/2))
}
