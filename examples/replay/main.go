// Replay: the reproducibility contract, demonstrated — starting from a
// checked-in declarative scenario file. The corpus entry is parsed, run
// with a trace recorder attached, serialized, reloaded, and re-run from
// the same scenario — the replay must match the recording event for
// event (trace.Diff == ""). This is how a result in EXPERIMENTS.md can
// be handed to someone else: the .scenario file IS the experiment.
package main

import (
	"bytes"
	"fmt"
	"os"

	"synran"
	"synran/internal/scenario"
	"synran/internal/trace"
)

// scenarioFile is resolved from the repository root (examples run via
// `go run ./examples/replay`).
const scenarioFile = "testdata/corpus/synran-splitvote.scenario"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func record(s scenario.Scenario) (*trace.Log, *synran.Result, error) {
	rec := trace.NewRecorder(s.N, s.T, s.Seed)
	spec, err := s.Spec(0, nil, 0)
	if err != nil {
		return nil, nil, err
	}
	spec.Observer = rec
	res, err := synran.Run(spec)
	if err != nil {
		return nil, nil, err
	}
	return rec.Log(), res, nil
}

func run() error {
	s, err := scenario.LoadFile(scenarioFile)
	if err != nil {
		return err
	}
	compact, err := scenario.Compact(s)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %s\n", scenarioFile, compact)

	original, res, err := record(s)
	if err != nil {
		return err
	}
	fmt.Printf("recorded execution: %d events, decided %d in %d rounds\n",
		len(original.Events), res.DecidedValue(), res.HaltRounds)

	// Serialize and reload — the shareable artifact.
	var buf bytes.Buffer
	if err := original.WriteJSON(&buf); err != nil {
		return err
	}
	fmt.Printf("serialized trace: %d bytes of JSON\n", buf.Len())
	loaded, err := trace.ReadJSON(&buf)
	if err != nil {
		return err
	}

	// Re-run the same scenario and compare event for event.
	replayed, _, err := record(s)
	if err != nil {
		return err
	}
	if d := trace.Diff(loaded, replayed); d != "" {
		return fmt.Errorf("replay diverged: %s", d)
	}
	fmt.Println("replay matches the recording event for event ✓")

	// A different seed is a different execution — Diff catches it.
	other := s
	other.Seed++
	diverged, _, err := record(other)
	if err != nil {
		return err
	}
	if d := trace.Diff(loaded, diverged); d == "" {
		return fmt.Errorf("different seeds produced identical traces")
	}
	fmt.Println("a different seed diverges, and Diff pinpoints where ✓")
	return nil
}
