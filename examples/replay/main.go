// Replay: the reproducibility contract, demonstrated. An execution is
// recorded as a structured JSON event trace, serialized, reloaded, and
// re-run from the same seed — the replay must match the recording event
// for event (trace.Diff == ""). This is how a result in EXPERIMENTS.md
// can be handed to someone else: the seed IS the experiment.
package main

import (
	"bytes"
	"fmt"
	"os"

	"synran"
	"synran/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func record(seed uint64) (*trace.Log, *synran.Result, error) {
	const n = 32
	rec := trace.NewRecorder(n, n-1, seed)
	res, err := synran.Run(synran.Spec{
		N: n, T: n - 1,
		Inputs:    synran.HalfHalfInputs(n),
		Adversary: synran.AdversarySplitVote,
		Seed:      seed,
		Observer:  rec,
	})
	if err != nil {
		return nil, nil, err
	}
	return rec.Log(), res, nil
}

func run() error {
	const seed = 2026

	original, res, err := record(seed)
	if err != nil {
		return err
	}
	fmt.Printf("recorded execution: %d events, decided %d in %d rounds\n",
		len(original.Events), res.DecidedValue(), res.HaltRounds)

	// Serialize and reload — the shareable artifact.
	var buf bytes.Buffer
	if err := original.WriteJSON(&buf); err != nil {
		return err
	}
	fmt.Printf("serialized trace: %d bytes of JSON\n", buf.Len())
	loaded, err := trace.ReadJSON(&buf)
	if err != nil {
		return err
	}

	// Re-run from the same seed and compare event for event.
	replayed, _, err := record(seed)
	if err != nil {
		return err
	}
	if d := trace.Diff(loaded, replayed); d != "" {
		return fmt.Errorf("replay diverged: %s", d)
	}
	fmt.Println("replay matches the recording event for event ✓")

	// A different seed is a different execution — Diff catches it.
	other, _, err := record(seed + 1)
	if err != nil {
		return err
	}
	if d := trace.Diff(loaded, other); d == "" {
		return fmt.Errorf("different seeds produced identical traces")
	}
	fmt.Println("a different seed diverges, and Diff pinpoints where ✓")
	return nil
}
