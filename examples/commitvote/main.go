// Commitvote: the scenario that motivates fail-stop consensus — a
// replicated cluster deciding commit (1) or abort (0) for a transaction
// while an adaptive adversary crashes replicas mid-vote.
//
// The demo runs the same commit vote under increasingly hostile
// adversaries and shows that the decision stays consistent across the
// surviving replicas every time, and how the round cost grows toward the
// paper's bound as the adversary strengthens.
package main

import (
	"fmt"
	"os"

	"synran"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "commitvote:", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 101
	// 60 replicas vote commit, 41 vote abort (e.g. 41 saw a conflict).
	votes := make([]int, replicas)
	for i := 0; i < 60; i++ {
		votes[i] = 1
	}

	fmt.Printf("cluster of %d replicas voting on a transaction (60 commit / 41 abort)\n", replicas)
	fmt.Printf("theory: worst-case expected rounds for t=%d is Θ-shape %.1f\n\n",
		replicas-1, synran.UpperBoundRounds(replicas, replicas-1))

	for _, adv := range []string{
		synran.AdversaryNone,
		synran.AdversaryRandom,
		synran.AdversarySplitVote,
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := synran.Run(synran.Spec{
				N: replicas, T: replicas - 1,
				Inputs:    votes,
				Adversary: adv,
				Seed:      seed,
			})
			if err != nil {
				return err
			}
			outcome := "ABORT"
			if res.DecidedValue() == 1 {
				outcome = "COMMIT"
			}
			fmt.Printf("adversary=%-10s seed=%d → %-6s in %2d rounds, %2d replicas crashed, agreement=%v\n",
				adv, seed, outcome, res.HaltRounds, res.Crashes, res.Agreement)
			if !res.Agreement {
				return fmt.Errorf("surviving replicas disagree — this must never happen")
			}
		}
	}
	fmt.Println("\nevery run: all surviving replicas applied the same outcome.")
	return nil
}
