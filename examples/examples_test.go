// Package examples_test smoke-tests every example program: each
// subdirectory must `go run` to completion with a zero exit status, so
// a refactor that breaks an example's API use fails `go test ./...`
// instead of waiting for a human to try `make examples`.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("each example is a full go run")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}
