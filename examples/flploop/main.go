// Flploop: FLP impossibility, live. Asynchronous Ben-Or derandomized
// (the "coin" is the process id's parity) is a deterministic
// asynchronous consensus protocol; the adaptive splitter scheduler keeps
// its report quorums balanced so it loops forever — while the genuinely
// randomized variant escapes the very same scheduler. This is the
// asynchronous backdrop (Section 1.2) against which the paper proves
// that even WITH randomness, the synchronous adaptive adversary forces
// Ω(t/√(n log n)) rounds.
package main

import (
	"errors"
	"fmt"
	"os"

	"synran/internal/async"
	"synran/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flploop:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n   = 4
		t   = 1
		cap = 6000
	)
	inputs := workload.HalfHalf(n)

	fmt.Printf("asynchronous Ben-Or, n=%d t=%d, split inputs, adaptive splitter scheduler\n\n", n, t)

	for _, mode := range []struct {
		name string
		m    async.CoinMode
	}{
		{"deterministic (parity coin)", async.CoinParity},
		{"randomized (private fair coin)", async.CoinRandom},
	} {
		procs, err := async.NewBenOrProcs(n, t, inputs, mode.m, 7)
		if err != nil {
			return err
		}
		exec, err := async.NewExecution(async.Config{N: n, T: t, MaxSteps: cap}, procs, inputs, 7)
		if err != nil {
			return err
		}
		res, err := exec.Run(async.NewSplitter())
		switch {
		case errors.Is(err, async.ErrMaxSteps):
			maxPhase := 0
			for _, p := range procs {
				if b := p.(*async.BenOr); b.Phase() > maxPhase {
					maxPhase = b.Phase()
				}
			}
			fmt.Printf("%-32s STILL UNDECIDED after %d deliveries (%d phases) — the FLP loop\n",
				mode.name, cap, maxPhase)
		case err != nil:
			return err
		default:
			fmt.Printf("%-32s decided %d after %d deliveries (agreement=%v)\n",
				mode.name, res.DecidedValue(), res.Steps, res.Agreement)
		}
	}
	fmt.Println("\nrandomness breaks the bivalence loop; determinism cannot (FLP 1985).")
	return nil
}
