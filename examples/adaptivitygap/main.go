// Adaptivitygap: the paper's Section 1.2 observation, live — its lower
// bound "does not hold without the adaptive selection of the faulty
// processes". The same protocol faces two adversaries with the same
// crash budget: one commits its whole schedule before the run (it cannot
// react to the coins), one adapts round by round.
//
// The printed metric is the settle round: the last round in which the
// live processes' proposals were still split, plus one — i.e. how long
// the adversary kept the OUTCOME in doubt. (Halting lags behind settling
// under crash storms because SynRan's stop rule deliberately waits them
// out; see EXPERIMENTS.md E11.)
package main

import (
	"fmt"
	"os"

	"synran"
	"synran/internal/sim"
	"synran/internal/wire"
)

// settleObserver records the last round with split proposals.
type settleObserver struct {
	lastSplit int
}

func (s *settleObserver) OnRound(r int, v *sim.View) {
	ones, zeros := 0, 0
	for i := 0; i < v.N; i++ {
		if !v.IsSending(i) {
			continue
		}
		if wire.IsFlood(v.Payload(i)) {
			if wire.Mask(v.Payload(i)) == wire.MaskBoth {
				ones++
				zeros++
			} else if wire.Mask(v.Payload(i)) == wire.MaskOne {
				ones++
			} else {
				zeros++
			}
			continue
		}
		if wire.Bit(v.Payload(i)) == 1 {
			ones++
		} else {
			zeros++
		}
	}
	if ones > 0 && zeros > 0 {
		s.lastSplit = r
	}
}

func (s *settleObserver) OnCrash(int, int, int)  {}
func (s *settleObserver) OnDecide(int, int, int) {}
func (s *settleObserver) OnHalt(int, int)        {}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptivitygap:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("SynRan, t = n-1: rounds until the outcome settled (mean over 10 seeds)")
	fmt.Printf("%6s  %22s  %22s\n", "n", "non-adaptive (waves)", "adaptive (splitvote)")
	for _, n := range []int{32, 64, 128, 256} {
		var wavesSum, splitSum int
		const seeds = 10
		for seed := uint64(1); seed <= seeds; seed++ {
			for _, adv := range []string{synran.AdversaryWaves, synran.AdversarySplitVote} {
				obs := &settleObserver{}
				res, err := synran.Run(synran.Spec{
					N: n, T: n - 1,
					Inputs:    synran.HalfHalfInputs(n),
					Adversary: adv,
					Seed:      seed,
					Observer:  obs,
				})
				if err != nil {
					return err
				}
				if !res.Agreement || !res.Validity {
					return fmt.Errorf("safety violated at n=%d", n)
				}
				if adv == synran.AdversaryWaves {
					wavesSum += obs.lastSplit + 1
				} else {
					splitSum += obs.lastSplit + 1
				}
			}
		}
		fmt.Printf("%6d  %22.1f  %22.1f\n", n,
			float64(wavesSum)/seeds, float64(splitSum)/seeds)
	}
	fmt.Println("\nthe adaptive adversary keeps the outcome in doubt for a duration growing")
	fmt.Println("with n; the committed schedule cannot react to the coins and settles in O(1).")
	return nil
}
