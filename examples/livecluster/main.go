// Livecluster: runs SynRan over the goroutine-per-process runner (one
// goroutine per replica, channels as links, a coordinator as the round
// synchronizer) with a live event trace — the same protocol code as the
// lock-step simulator, deployed concurrently.
package main

import (
	"fmt"
	"os"

	"synran"
)

func main() {
	const n = 24
	fmt.Printf("starting %d replica goroutines (adaptive split-vote adversary, t=%d)\n\n", n, n-1)
	res, err := synran.Run(synran.Spec{
		N: n, T: n - 1,
		Inputs:    synran.HalfHalfInputs(n),
		Adversary: synran.AdversarySplitVote,
		Seed:      7,
		Live:      true,
		Observer:  &synran.TraceObserver{W: os.Stdout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
	fmt.Printf("\ndecided %d after %d rounds; crashes=%d survivors=%d agreement=%v validity=%v\n",
		res.DecidedValue(), res.HaltRounds, res.Crashes, res.Survivors, res.Agreement, res.Validity)
}
