// Livecluster: runs SynRan over the goroutine-per-process runner (one
// goroutine per replica, channels as links, a coordinator as the round
// synchronizer) with a live event trace — the same protocol code as the
// lock-step simulator, deployed concurrently. A second run turns on the
// chaos injector: the substrate drops, duplicates, and stalls messages
// and processes, and the hardened synchronizer absorbs the damage as
// budgeted crash faults without giving up safety.
package main

import (
	"flag"
	"fmt"
	"os"

	"synran"
	"synran/internal/cli"
)

func main() {
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()
	const n = 24
	// One shared engine for both runs; shard 0 because the example runs
	// its executions one at a time. Its instruments feed the expvar
	// endpoint when -pprof is set.
	eng := synran.NewMetricsEngine(1)
	if *pprofAddr != "" {
		addr, stopPprof, err := cli.StartPprof(*pprofAddr, eng.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "livecluster:", err)
			os.Exit(1)
		}
		defer stopPprof()
		fmt.Printf("pprof: http://%s/debug/pprof/ (metrics under /debug/vars)\n", addr)
	}
	fmt.Printf("starting %d replica goroutines (adaptive split-vote adversary, t=%d)\n\n", n, n-1)
	res, err := synran.Run(synran.Spec{
		N: n, T: n - 1,
		Inputs:    synran.HalfHalfInputs(n),
		Adversary: synran.AdversarySplitVote,
		Seed:      7,
		Live:      true,
		Observer:  &synran.TraceObserver{W: os.Stdout},
		Metrics:   eng,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
	fmt.Printf("\ndecided %d after %d rounds; crashes=%d survivors=%d agreement=%v validity=%v\n",
		res.DecidedValue(), res.HaltRounds, res.Crashes, res.Survivors, res.Agreement, res.Validity)

	// Same cluster, faulty substrate: every message can be dropped or
	// duplicated, every replica can stall mid-round. The fault trace is
	// reproducible from (seed, schedule) alone — rerun and get the same
	// drops, the same demotions, the same decision.
	chaosCfg, err := synran.ParseChaosSpec("drop=0.05,dup=0.03,stall=0.05,maxstall=2ms,until=30")
	if err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
	fmt.Printf("\nrestarting under chaos (%s), fault budget %d\n", chaosCfg.Spec(), n/4)
	res, err = synran.Run(synran.Spec{
		N: n, T: n - 1,
		Inputs:      synran.HalfHalfInputs(n),
		Adversary:   synran.AdversaryNone,
		Seed:        7,
		Chaos:       &chaosCfg,
		FaultBudget: n / 4,
		Metrics:     eng,
	})
	if err != nil {
		// Graceful degradation still carries the fault accounting.
		if res != nil {
			fmt.Printf("degraded: %v (faults %+v)\n", err, res.Faults)
		} else {
			fmt.Fprintln(os.Stderr, "livecluster:", err)
		}
		os.Exit(1)
	}
	fmt.Printf("survived the chaos: decided %d after %d rounds; agreement=%v validity=%v\n",
		res.DecidedValue(), res.HaltRounds, res.Agreement, res.Validity)
	fmt.Printf("fault accounting: dropped=%d duplicated=%d stalled=%d demoted=%d panics=%d\n",
		res.Faults.Dropped, res.Faults.Duplicated, res.Faults.Stalled, res.Faults.Demoted, res.Faults.Panics)
	for _, note := range res.FaultNotes {
		fmt.Printf("  %s\n", note)
	}
}
