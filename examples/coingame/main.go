// Coingame: Section 2 of the paper, live. Plays one-round collective
// coin-flipping games against an adaptive fail-stop adversary of varying
// budget and prints how often each outcome can be forced — including the
// one-sided majority-with-default-0 game that shows control is not
// always symmetric.
package main

import (
	"fmt"
	"os"

	"synran/internal/coinflip"
	"synran/internal/core"
	"synran/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coingame:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n      = 256
		trials = 4000
		seed   = 99
	)
	games := []coinflip.Game{
		coinflip.Majority{N: n},
		coinflip.MajorityDefaultZero{N: n},
		coinflip.Parity{N: n},
		coinflip.Leader{N: n, K: 4},
		coinflip.Threshold{N: n, K: 4},
	}
	budgets := []int{0, 1, 16, core.CoinControlBudget(n, 1), n}

	tb := stats.NewTable(
		fmt.Sprintf("one-round coin games, n = %d players (%d trials)", n, trials),
		"game", "budget t", "Pr[force 0]", "Pr[force 1]", "controls (>1-1/n)")
	for _, g := range games {
		for _, t := range budgets {
			if t > n {
				t = n
			}
			rep, err := coinflip.Control(g, t, trials, 0, seed)
			if err != nil {
				return err
			}
			tb.AddRow(g.Name(), t, rep.ForceProb[0], rep.ForceProb[1], rep.Controls())
		}
	}
	tb.Note = fmt.Sprintf("Corollary 2.2 budget k·4·sqrt(n log n) = %d for k=2; "+
		"majority-default0 can never be forced to 1", core.CoinControlBudget(n, 2))
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	// Multi-round games (the Aspnes connection the paper cites): total
	// halts of O(sqrt(n)·log n) control the iterated-majority game.
	g := coinflip.IteratedMajority{N: n, R: coinflip.RoundsDefault(n)}
	tb2 := stats.NewTable(
		fmt.Sprintf("iterated majority, n = %d players × %d rounds", g.N, g.R),
		"budget t", "Pr[force 0]", "Pr[force 1]")
	for _, t := range []int{0, 8, 2 * 16 * g.R} {
		p0, _, err := coinflip.IteratedControl(g, 0, t, trials, 0, seed)
		if err != nil {
			return err
		}
		p1, _, err := coinflip.IteratedControl(g, 1, t, trials, 0, seed+1)
		if err != nil {
			return err
		}
		tb2.AddRow(t, p0, p1)
	}
	tb2.Note = "multi-round structure removes the one-sidedness: both directions controllable"
	return tb2.Render(os.Stdout)
}
