package synran

import "testing"

func TestFacadeRunDefaults(t *testing.T) {
	res, err := Run(Spec{N: 16, T: 0, Inputs: UniformInputs(16, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity || res.DecidedValue() != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestFacadeProtocolsAndAdversaries(t *testing.T) {
	protocols := []string{ProtocolSynRan, ProtocolBenOr, ProtocolFloodSet, ProtocolLeaderCoin, ProtocolEarlyStop}
	adversaries := []string{AdversaryNone, AdversaryRandom, AdversarySplitVote, AdversaryPush0, AdversaryPush1}
	for _, p := range protocols {
		for _, a := range adversaries {
			res, err := Run(Spec{
				N: 12, T: 4, Inputs: HalfHalfInputs(12),
				Protocol: p, Adversary: a, Seed: 9,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", p, a, err)
			}
			if !res.Agreement {
				t.Fatalf("%s/%s: agreement violated", p, a)
			}
		}
	}
}

func TestFacadePhaseKingEquivocator(t *testing.T) {
	// Phase King needs n > 4t; pair it with the Byzantine adversary.
	res, err := Run(Spec{
		N: 13, T: 3, Inputs: HalfHalfInputs(13),
		Protocol: ProtocolPhaseKing, Adversary: AdversaryEquivocator, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v", res.Agreement, res.Validity)
	}
	if res.Survivors != 10 {
		t.Fatalf("survivors = %d, want 10 correct processes", res.Survivors)
	}
}

func TestFacadeLiveRejectsEquivocator(t *testing.T) {
	_, err := Run(Spec{
		N: 13, T: 3, Inputs: HalfHalfInputs(13),
		Protocol: ProtocolPhaseKing, Adversary: AdversaryEquivocator, Seed: 4, Live: true,
	})
	if err == nil {
		t.Fatal("live runner must reject the Byzantine adversary")
	}
}

func TestFacadeLiveRunner(t *testing.T) {
	res, err := Run(Spec{
		N: 16, T: 8, Inputs: HalfHalfInputs(16),
		Adversary: AdversaryRandom, Seed: 3, Live: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatal("live run unsafe")
	}
}

func TestFacadeLowerBoundAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("look-ahead adversary is expensive")
	}
	res, err := Run(Spec{
		N: 8, T: 7, Inputs: HalfHalfInputs(8),
		Adversary: AdversaryLowerBound, Seed: 5, MaxRounds: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatal("lower-bound adversary broke safety")
	}
}

func TestFacadeLiveRejectsLowerBound(t *testing.T) {
	_, err := Run(Spec{
		N: 8, T: 7, Inputs: HalfHalfInputs(8),
		Adversary: AdversaryLowerBound, Seed: 5, Live: true,
	})
	if err == nil {
		t.Fatal("live runner must reject the look-ahead adversary")
	}
}

func TestFacadeUnknownNames(t *testing.T) {
	if _, err := Run(Spec{N: 4, T: 0, Inputs: UniformInputs(4, 0), Protocol: "bogus"}); err == nil {
		t.Fatal("unknown protocol must error")
	}
	if _, err := Run(Spec{N: 4, T: 0, Inputs: UniformInputs(4, 0), Adversary: "bogus"}); err == nil {
		t.Fatal("unknown adversary must error")
	}
}

func TestFacadeBounds(t *testing.T) {
	if UpperBoundRounds(1024, 1023) <= 0 || LowerBoundRounds(1024, 1023) <= 0 {
		t.Fatal("bounds must be positive for t = n-1")
	}
	if DetThreshold(1024) <= 0 {
		t.Fatal("DetThreshold must be positive")
	}
}
