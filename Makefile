# Development entry points. Everything is stdlib-only Go; no external
# tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build test test-short race cover bench experiments experiments-quick examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

# One testing.B target per paper experiment, plus ablations and
# substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment table at full size (minutes) or quick size
# (seconds). Exit status is non-zero if any paper claim fails.
experiments:
	$(GO) run ./cmd/synran-bench

experiments-quick:
	$(GO) run ./cmd/synran-bench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/commitvote
	$(GO) run ./examples/coingame
	$(GO) run ./examples/livecluster
	$(GO) run ./examples/adaptivitygap
	$(GO) run ./examples/flploop

clean:
	$(GO) clean ./...
