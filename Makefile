# Development entry points. Everything is stdlib-only Go; no external
# tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build test test-short race cover bench bench-json bench-check chaos soak server-smoke conformance scenarios experiments experiments-quick adversary-smoke metrics metrics-golden examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

# One testing.B target per paper experiment, plus ablations and
# substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# The snapshot-engine benchmarks recorded as a machine-readable JSON
# artifact (the checked-in baseline CI gates against).
BENCH_SNAPSHOT = CloneVsCloneInto|ValencyEstimate|StepwiseRound|MetricsOverhead|EngineAtScale
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_SNAPSHOT)' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# Re-run the snapshot benches once and fail if the arena estimator's
# allocs/op regressed more than 20% against the checked-in baseline, the
# disabled metrics path's more than 2% (the "metrics off = free"
# budget), or the SoA stepwise lane's more than 34% (baseline 3
# allocs/op, so the columnar core stays two orders of magnitude under
# the object engine's 1063-alloc seed).
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_SNAPSHOT)' -benchtime=1x -benchmem . | \
		$(GO) run ./cmd/benchjson -out /dev/null -baseline BENCH_sim.json \
		-check 'BenchmarkValencyEstimate/arena=0.20,BenchmarkMetricsOverhead/off=0.02,BenchmarkStepwiseRoundSoA=0.34,BenchmarkEngineAtScale/soa=0.20'

# Seeded chaos soak under the race detector: the fault injector, the
# hardened synchronizer's safety/termination properties, and the
# zero-fault equivalence proof, all with scheduling randomized by -race.
chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/netsim
	$(GO) run ./cmd/consensus-sim -n 16 -t 7 -adversary none -seed 42 \
		-chaos 'drop=0.05,dup=0.02,stall=0.05,maxstall=2ms,until=25' -faultbudget 5 -trials 8

# Crash-chaos soak for the durability layer, under the race detector:
# the journal's format/truncation/corruption properties and fuzz corpus,
# the DurableWorker retry/hedge/interrupt suite, the in-process
# kill-at-seeded-checkpoints soak (resume must reproduce the
# uninterrupted tables byte for byte at every worker count), and the
# cmd-level SIGKILL/re-exec and -deadline/-resume smokes, then a short
# coverage-guided fuzz of the journal decoder.
soak:
	$(GO) test -race -count=1 -run 'Journal|Durable|Soak|Checkpoint|KillResume|DeadlineFlush|Watchdog' \
		./internal/journal ./internal/trials ./internal/cli
	$(GO) test -run '^$$' -fuzz FuzzJournal -fuzztime 10s ./internal/journal

# Experiment-service smoke: the resident trial server's unit and soak
# suites under the race detector (priority gate, job store replay,
# backpressure, in-process restart and cmd-level SIGKILL byte-identity),
# then the loadgen hammering a selfhost server with 8 mixed-priority
# clients, the canary lane, and the typed queue-full probe — every
# job's merged table must match the consensus-sim run of the same
# scenario byte for byte.
server-smoke:
	$(GO) test -race -count=1 ./internal/server
	$(GO) test -race -count=1 -run 'TestServer|TestSynrand|TestLoadgen' ./internal/cli
	$(GO) run ./cmd/synrand loadgen -clients 8 -jobs 3 -canary 5

# Cross-engine conformance: the differential harness (sequential sim vs
# zero-chaos netsim vs Reset vs snapshot forks vs the columnar SoA
# core, plus async replay determinism) with its invariant oracles, then
# the quick CLI sweep on both engine cores.
conformance:
	$(GO) test -count=1 ./internal/conformance
	$(GO) run ./cmd/conformance -quick -seed 42
	$(GO) run ./cmd/conformance -quick -seed 42 -engine soa
	$(GO) run ./cmd/conformance -scenario-dir testdata/corpus

# The declarative scenario surface: codec round-trip and corpus tests,
# the checked-in corpus through every lane of the conformance binary
# and as a bench outcome table, then a short coverage-guided fuzz that
# mutates corpus entries hunting for engine divergences — any finding
# is minimized and written back into testdata/corpus as a repro.
scenarios:
	$(GO) test -count=1 ./internal/scenario
	$(GO) test -count=1 -run 'Scenario|Corpus' ./internal/conformance ./internal/cli
	$(GO) run ./cmd/conformance -scenario-dir testdata/corpus
	$(GO) run ./cmd/synran-bench -scenario-dir testdata/corpus
	$(GO) test -run '^$$' -fuzz FuzzScenario -fuzztime 10s ./internal/conformance

# Regenerate every experiment table at full size (minutes) or quick size
# (seconds). Exit status is non-zero if any paper claim fails.
experiments:
	$(GO) run ./cmd/synran-bench

experiments-quick:
	$(GO) run ./cmd/synran-bench -quick

# The adversary-family smoke: the omission/late experiments at quick
# size plus the clone-aliasing guard over every family the facade
# builds. Fast enough to run before any adversary or engine change.
adversary-smoke:
	$(GO) run ./cmd/synran-bench -quick -only E18,E19
	$(GO) test -count=1 -run TestCloneDoesNotAliasOriginal ./internal/adversary

# The metrics determinism suite: shard-layout invariance, the CLI-level
# workers-1-vs-8 byte comparison, the netsim counters-vs-Faults
# cross-check, and the quick-suite golden (tables + metrics JSON).
metrics:
	$(GO) test -count=1 ./internal/metrics
	$(GO) test -count=1 -run 'Metrics|Pprof' ./internal/cli ./internal/netsim
	$(GO) test -count=1 -run 'TestRunAllWorkerInvariance|TestQuickGoldenFile' ./internal/experiments

# Regenerate the quick-suite goldens: the experiment tables and the
# metrics export come from the same run, so they stay in sync.
metrics-golden:
	$(GO) run ./cmd/synran-bench -quick -seed 42 -workers 8 \
		-metrics-out results/metrics-quick-seed42.json > results/experiments-quick-seed42.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/replay
	$(GO) run ./examples/commitvote
	$(GO) run ./examples/coingame
	$(GO) run ./examples/livecluster
	$(GO) run ./examples/adaptivitygap
	$(GO) run ./examples/flploop

clean:
	$(GO) clean ./...
